//! `fleet_bench` — the deterministic fleet benchmark harness behind CI's
//! perf gate.
//!
//! ```text
//! fleet_bench                               # run the matrix, JSON on stdout
//! fleet_bench --out report.json             # write the JSON to a file
//!                                           # instead of stdout
//! fleet_bench --check BENCH_baseline.json   # compare against a baseline;
//!                                           # exit 1 on regression
//! fleet_bench --tolerance 0.25              # relative tolerance band
//! fleet_bench --servers 4                   # fleet size (default 4)
//! fleet_bench --jobs 4                      # run matrix cells on N worker
//!                                           # threads (default: available
//!                                           # parallelism); the JSON is
//!                                           # byte-identical at any N
//! fleet_bench --timings timings.json        # write per-cell wall-clock and
//!                                           # events/sec to a separate JSON
//!                                           # (kept out of the main output
//!                                           # so it stays deterministic)
//! fleet_bench --summary summary.md          # write a markdown summary
//!                                           # (gate table + simulator
//!                                           # throughput + datapath sweep) —
//!                                           # CI appends it to
//!                                           # $GITHUB_STEP_SUMMARY
//! fleet_bench --shards 4                    # run every matrix cell on the
//!                                           # sharded fleet runner; the JSON
//!                                           # is byte-identical at any N
//! fleet_bench --scale 64,128                # also run the scaling curve at
//!                                           # these fleet sizes ...
//! fleet_bench --scale-shards 1,2,4          # ... across these shard counts
//!                                           # (default 1,2,4); points land in
//!                                           # --timings and --summary
//! fleet_bench --scale-only                  # skip the matrix and the gate,
//!                                           # run only the scaling curve
//!                                           # and/or requested ablations
//! fleet_bench --link-models                 # also run the link-model
//!                                           # ablation (FIFO-fixed vs
//!                                           # fair-share contention under
//!                                           # pre-copy); cells land in
//!                                           # --summary and on stderr
//! fleet_bench --estimators                  # also run the estimator
//!                                           # ablation (exact per-flow vs
//!                                           # heavy-hitter sketch on the
//!                                           # flash crowd); cells land in
//!                                           # --summary and on stderr
//! fleet_bench --estimator-flows 1000000     # flow population per server of
//!                                           # the estimator ablation
//!                                           # (default 100000)
//! fleet_bench --faults                      # also run the failure scenarios
//!                                           # (crash mid-pre-copy, link-flap
//!                                           # storm, correlated overload
//!                                           # recovery) under their invariant
//!                                           # audits; any violation fails the
//!                                           # run. Faulted fleets run on
//!                                           # --shards lanes and the cells
//!                                           # are byte-identical at any
//!                                           # shard/job count
//! fleet_bench --faults-out faults.json      # write the fault cells as JSON
//!                                           # (what CI's fault matrix diffs
//!                                           # across shard counts)
//! ```
//!
//! Every run uses fixed seeds (see `pam_experiments::fleet`), so two runs of
//! the same build produce byte-identical JSON and the baseline comparison is
//! meaningful: metrics moving past the tolerance band are real changes in
//! the algorithms or the simulator, not noise. (The wall-clock column of the
//! `--summary` throughput sweep is the one machine-dependent number; it is
//! reported for reading, never gated.)

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use pam_core::StrategyKind;
use pam_experiments::faults::{run_fault_scenarios, FaultCell};
use pam_experiments::fleet::{
    run_estimator_ablation, run_fleet_matrix_opts, run_link_model_ablation, run_scale_curve,
    EstimatorCell, FleetBenchEntry, FleetBenchOutput, FleetScenario, FleetScenarioKind,
    FleetTuning, LinkModelCell, MatrixTimings, ScalePoint, SCALE_CURVE_SCENARIO,
};

/// Relative tolerance band the gate allows before calling a change a
/// regression (generous: the runs are deterministic, so any drift at all is
/// an intentional code change — the band only tolerates *small* ones).
const DEFAULT_TOLERANCE: f64 = 0.25;

/// Absolute slack on packet counters, so a baseline of zero drops does not
/// fail on a handful of new ones.
const COUNT_SLACK: f64 = 64.0;

struct Args {
    out: Option<String>,
    check: Option<String>,
    summary: Option<String>,
    timings: Option<String>,
    tolerance: f64,
    servers: usize,
    jobs: usize,
    shards: usize,
    scale: Vec<usize>,
    scale_shards: Vec<usize>,
    scale_only: bool,
    link_models: bool,
    estimators: bool,
    estimator_flows: usize,
    faults: bool,
    faults_out: Option<String>,
}

/// The default worker-thread count: the machine's available parallelism.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a comma-separated list of positive integers (`64,128,256`).
fn parse_list(name: &str, raw: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|e| format!("{name}: `{part}`: {e}"))
                .and_then(|n| {
                    if n == 0 {
                        Err(format!("{name}: entries must be positive"))
                    } else {
                        Ok(n)
                    }
                })
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        check: None,
        summary: None,
        timings: None,
        tolerance: DEFAULT_TOLERANCE,
        servers: 4,
        jobs: default_jobs(),
        shards: 1,
        scale: Vec::new(),
        scale_shards: vec![1, 2, 4],
        scale_only: false,
        link_models: false,
        estimators: false,
        estimator_flows: 100_000,
        faults: false,
        faults_out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            "--summary" => args.summary = Some(value("--summary")?),
            "--timings" => args.timings = Some(value("--timings")?),
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1)
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse::<usize>()
                    .map_err(|e| format!("--shards: {e}"))?
                    .max(1)
            }
            "--scale" => args.scale = parse_list("--scale", &value("--scale")?)?,
            "--scale-shards" => {
                args.scale_shards = parse_list("--scale-shards", &value("--scale-shards")?)?
            }
            "--scale-only" => args.scale_only = true,
            "--link-models" => args.link_models = true,
            "--estimators" => args.estimators = true,
            "--faults" => args.faults = true,
            "--faults-out" => args.faults_out = Some(value("--faults-out")?),
            "--estimator-flows" => {
                args.estimator_flows = value("--estimator-flows")?
                    .parse::<usize>()
                    .map_err(|e| format!("--estimator-flows: {e}"))?
                    .max(1)
            }
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--servers" => {
                args.servers = value("--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.scale_only
        && args.scale.is_empty()
        && !args.link_models
        && !args.estimators
        && !args.faults
    {
        return Err(
            "--scale-only needs --scale (or an ablation: --link-models / --estimators / --faults)"
                .to_string(),
        );
    }
    if args.faults_out.is_some() && !args.faults {
        return Err("--faults-out needs --faults".to_string());
    }
    Ok(args)
}

/// One gate comparison: fails when `current` worsens past the band.
struct Check {
    metric: &'static str,
    baseline: f64,
    current: f64,
    failed: bool,
}

/// Metrics where *larger* is worse (latency, drops, blackout).
fn worse_if_above(metric: &'static str, baseline: f64, current: f64, tolerance: f64) -> Check {
    let slack = if metric.ends_with("drops") {
        COUNT_SLACK
    } else {
        0.0
    };
    let bound = baseline * (1.0 + tolerance) + slack;
    Check {
        metric,
        baseline,
        current,
        failed: current > bound,
    }
}

/// Metrics where *smaller* is worse (delivered packets).
fn worse_if_below(metric: &'static str, baseline: f64, current: f64, tolerance: f64) -> Check {
    Check {
        metric,
        baseline,
        current,
        failed: current < baseline * (1.0 - tolerance),
    }
}

/// Finds the entry of `results` at the same matrix coordinates as `cell`
/// (the one matching predicate shared by the gate and the summary table).
fn find_cell<'a>(
    results: &'a [FleetBenchEntry],
    cell: &FleetBenchEntry,
) -> Option<&'a FleetBenchEntry> {
    results.iter().find(|e| {
        e.scenario == cell.scenario
            && e.strategy == cell.strategy
            && e.migration_mode == cell.migration_mode
            && e.batch == cell.batch
    })
}

fn gate_entry(baseline: &FleetBenchEntry, current: &FleetBenchEntry, tolerance: f64) -> Vec<Check> {
    let b = &baseline.report.totals;
    let c = &current.report.totals;
    vec![
        worse_if_above("p50_us", b.p50_us, c.p50_us, tolerance),
        worse_if_above("p99_us", b.p99_us, c.p99_us, tolerance),
        worse_if_above("mean_us", b.mean_us, c.mean_us, tolerance),
        worse_if_above("blackout_us", b.blackout_us, c.blackout_us, tolerance),
        worse_if_above(
            "overload_drops",
            b.drops_overload as f64,
            c.drops_overload as f64,
            tolerance,
        ),
        worse_if_above(
            "migration_drops",
            b.drops_migration as f64,
            c.drops_migration as f64,
            tolerance,
        ),
        worse_if_below(
            "delivered",
            b.delivered as f64,
            c.delivered as f64,
            tolerance,
        ),
    ]
}

fn run_gate(baseline: &FleetBenchOutput, current: &FleetBenchOutput, tolerance: f64) -> bool {
    // A baseline from a different configuration is a setup error, not a
    // performance regression — comparing cells anyway would misattribute the
    // whole delta to the algorithms.
    if (baseline.version, baseline.servers, baseline.seed)
        != (current.version, current.servers, current.seed)
    {
        eprintln!(
            "perf-gate: CONFIG MISMATCH — baseline is version {} / {} servers / seed {}, \
             this run is version {} / {} servers / seed {}; regenerate the baseline \
             with the same flags instead of comparing",
            baseline.version,
            baseline.servers,
            baseline.seed,
            current.version,
            current.servers,
            current.seed
        );
        return false;
    }
    let mut regressions = 0usize;
    let mut missing = 0usize;
    for base in &baseline.results {
        let Some(cur) = find_cell(&current.results, base) else {
            eprintln!(
                "perf-gate: MISSING  {}/{}/{}/batch{} — cell not in current matrix",
                base.scenario, base.strategy, base.migration_mode, base.batch
            );
            missing += 1;
            continue;
        };
        for check in gate_entry(base, cur, tolerance) {
            if check.failed {
                eprintln!(
                    "perf-gate: FAIL     {}/{}/{}/batch{} {}: baseline {:.1}, current {:.1} (tolerance {:.0}%)",
                    base.scenario,
                    base.strategy,
                    base.migration_mode,
                    base.batch,
                    check.metric,
                    check.baseline,
                    check.current,
                    tolerance * 100.0
                );
                regressions += 1;
            }
        }
    }
    if regressions == 0 && missing == 0 {
        eprintln!(
            "perf-gate: OK — {} cells within the {:.0}% band",
            baseline.results.len(),
            tolerance * 100.0
        );
        true
    } else {
        eprintln!("perf-gate: {regressions} regression(s), {missing} missing cell(s)");
        false
    }
}

/// One point of the datapath-throughput sweep: the rolling-hotspot scenario
/// under PAM at one batch size, with the harness wall-clock alongside the
/// (deterministic) simulation metrics.
struct ThroughputPoint {
    batch: u32,
    wall_secs: f64,
    injected: u64,
    delivered: u64,
    p99_us: f64,
}

/// Runs the rolling-hotspot scenario across batch sizes, timing each run.
/// The simulation metrics are deterministic; only `wall_secs` depends on the
/// machine (which is why the summary reports it but the gate ignores it).
fn throughput_sweep(servers: usize) -> Vec<ThroughputPoint> {
    [1u32, 2, 4, 8, 16]
        .iter()
        .map(|&batch| {
            let scenario = FleetScenario::new(FleetScenarioKind::RollingHotspot, servers)
                .with_tuning(FleetTuning::default().with_batch(batch));
            let start = Instant::now();
            let Ok(report) = scenario.run(StrategyKind::Pam) else {
                unreachable!("the fixed rolling-hotspot scenario always runs");
            };
            let wall_secs = start.elapsed().as_secs_f64();
            ThroughputPoint {
                batch,
                wall_secs,
                injected: report.totals.injected,
                delivered: report.totals.delivered,
                p99_us: report.totals.p99_us,
            }
        })
        .collect()
}

/// Renders the gate comparison as a markdown table (one row per cell). With
/// no baseline the table still lists every cell, with its status marked
/// `new`.
fn render_gate_markdown(
    baseline: Option<&FleetBenchOutput>,
    current: &FleetBenchOutput,
    tolerance: f64,
) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "## Fleet perf gate — {} cells, ±{:.0}% band\n",
        current.results.len(),
        tolerance * 100.0
    );
    let _ = writeln!(
        md,
        "| scenario | strategy | mode | batch | p50 µs | p99 µs | mean µs | delivered | drops | blackout µs | aborted | crash/rec | status |"
    );
    let _ = writeln!(
        md,
        "|---|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|"
    );
    for cur in &current.results {
        let totals = &cur.report.totals;
        let drops = totals.drops_overload + totals.drops_policy + totals.drops_migration;
        let status = match baseline.and_then(|b| find_cell(&b.results, cur)) {
            None => "new".to_string(),
            Some(base) => {
                let failed: Vec<&str> = gate_entry(base, cur, tolerance)
                    .into_iter()
                    .filter(|c| c.failed)
                    .map(|c| c.metric)
                    .collect();
                if failed.is_empty() {
                    "ok".to_string()
                } else {
                    format!("**FAIL** ({})", failed.join(", "))
                }
            }
        };
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {:.1} | {:.1} | {:.1} | {} | {} | {:.1} | {} | {}/{} | {} |",
            cur.scenario,
            cur.strategy,
            cur.migration_mode,
            cur.batch,
            totals.p50_us,
            totals.p99_us,
            totals.mean_us,
            totals.delivered,
            drops,
            totals.blackout_us,
            totals.aborted_migrations,
            totals.server_crashes,
            totals.server_recoveries,
            status
        );
    }
    md
}

/// Renders the audited failure scenarios as a markdown table. Every row
/// already passed its `FaultAudit` (a violation would have failed the run),
/// so the table reports *how* the fleet survived: what was black-holed,
/// aborted, re-steered and recovered, next to the fault-free reference.
fn render_faults_markdown(cells: &[FaultCell]) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "## Failure scenarios — fault injection under invariant audits\n"
    );
    let _ = writeln!(
        md,
        "Each faulted run is audited against a fault-free reference: offered \
         load conserved exactly (`injected + fault drops == reference \
         injected`), per-server `injected == delivered + drops` (no lost \
         acked state, no duplicate apply), blackout bounded, and recovery \
         delivering strictly more than a never-recovered control run."
    );
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "| scenario | servers | faults | injected | delivered | fault drops | crashes | recoveries | aborted | target crashes | re-steered | blackout µs | p99 µs | ref delivered | control delivered |"
    );
    let _ = writeln!(
        md,
        "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|"
    );
    for cell in cells {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.1} | {:.1} | {} | {} |",
            cell.scenario,
            cell.servers,
            cell.faults,
            cell.injected,
            cell.delivered,
            cell.fault_drops,
            cell.server_crashes,
            cell.server_recoveries,
            cell.aborted_migrations,
            cell.target_crashes,
            cell.resteered_packets,
            cell.blackout_us,
            cell.p99_us,
            cell.reference_delivered,
            cell.control_delivered
        );
    }
    md
}

/// Renders the simulator-throughput measurements (per-cell wall-clock and
/// events/second, plus the matrix total) as a markdown table. Wall-clock
/// numbers are machine-dependent: they are reported for reading, never
/// gated, and never part of the deterministic benchmark JSON.
fn render_simulator_throughput_markdown(timings: &MatrixTimings) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "## Simulator throughput — {} cells on {} thread(s), {:.0} ms total\n",
        timings.cells.len(),
        timings.jobs,
        timings.total_wall_ms
    );
    let _ = writeln!(
        md,
        "{} simulated events in total — {:.2}M events/s aggregate. Slowest cells:",
        timings.total_events,
        timings.total_events as f64 / timings.total_wall_ms / 1e3,
    );
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "| scenario | strategy | mode | batch | wall ms | events | events/s |"
    );
    let _ = writeln!(md, "|---|---|---|---:|---:|---:|---:|");
    let mut slowest: Vec<&pam_experiments::fleet::CellTiming> = timings.cells.iter().collect();
    slowest.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
    for cell in slowest.into_iter().take(8) {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {:.1} | {} | {:.0} |",
            cell.scenario,
            cell.strategy,
            cell.migration_mode,
            cell.batch,
            cell.wall_ms,
            cell.events,
            cell.events_per_sec
        );
    }
    md
}

/// Renders the sharded scaling curve as a markdown table. Every point was
/// byte-compared against the sequential run inside `run_scale_curve`, so a
/// row in this table is also a determinism witness; `speedup` is wall-clock
/// (machine-dependent, reported for reading, never gated).
fn render_scale_markdown(points: &[ScalePoint]) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "## Sharded scaling curve — {} under PAM, byte-identical at every point\n",
        SCALE_CURVE_SCENARIO.name()
    );
    let _ = writeln!(
        md,
        "| servers | shards | wall ms | events | events/s | speedup | windows | max barrier wait ms |"
    );
    let _ = writeln!(md, "|---:|---:|---:|---:|---:|---:|---:|---:|");
    for point in points {
        let max_wait = point
            .lanes
            .iter()
            .map(|l| l.barrier_wait_ms)
            .fold(0.0f64, f64::max);
        let _ = writeln!(
            md,
            "| {} | {} | {:.1} | {} | {:.0} | {:.2}x | {} | {:.1} |",
            point.servers,
            point.shards,
            point.wall_ms,
            point.events,
            point.events_per_sec,
            point.speedup,
            point.windows,
            max_wait
        );
    }
    md
}

/// Renders the link-model ablation as a markdown table: for every
/// (scenario, strategy) pair, the FIFO-fixed row is the committed-baseline
/// behaviour and the fair-share row shows what contention with foreground
/// DMA does to the same migrations — longer pre-copy rounds first, then the
/// knock-on blackout/p99/drop shifts.
fn render_link_models_markdown(cells: &[LinkModelCell]) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "## Link-model ablation — pre-copy under FIFO-fixed vs fair-share contention\n"
    );
    let _ = writeln!(
        md,
        "Fair sharing splits each link direction's bandwidth across concurrent \
         transfers, so migration state transfer and foreground DMA slow each \
         other down instead of queueing at full line rate."
    );
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "| scenario | strategy | link model | migrations | rounds | mean round µs | max round µs | blackout µs | p99 µs | migration drops |"
    );
    let _ = writeln!(md, "|---|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for cell in cells {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {} |",
            cell.scenario,
            cell.strategy,
            cell.link_model,
            cell.migrations,
            cell.rounds,
            cell.mean_round_us,
            cell.max_round_us,
            cell.blackout_us,
            cell.p99_us,
            cell.drops_migration
        );
    }
    md
}

/// Renders the estimator ablation as a markdown table: for every strategy,
/// the exact row is the committed-baseline estimator and the sketch row runs
/// the same seeded flash crowd behind the sliding heavy-hitter sketch. Both
/// feed the ladder from the same tick-sample window, so the decision columns
/// must agree — the memory column is the win, and the footer states it.
fn render_estimators_markdown(cells: &[EstimatorCell]) -> String {
    let mut md = String::new();
    let flows = cells.first().map(|c| c.flows).unwrap_or(0);
    let _ = writeln!(
        md,
        "## Estimator ablation — exact per-flow vs heavy-hitter sketch, \
         flash crowd at {flows} flows/server\n"
    );
    let _ = writeln!(
        md,
        "| strategy | estimator | migrations | scale-outs | p99 µs | drops | estimator bytes | ε | δ |"
    );
    let _ = writeln!(md, "|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for cell in cells {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {:.1} | {} | {} | {:.4} | {:.4} |",
            cell.strategy,
            cell.estimator,
            cell.migrations,
            cell.scale_outs,
            cell.p99_us,
            cell.drops,
            cell.estimator_bytes,
            cell.epsilon,
            cell.delta
        );
    }
    let exact: usize = cells
        .iter()
        .filter(|c| c.estimator == "exact")
        .map(|c| c.estimator_bytes)
        .sum();
    let sketch: usize = cells
        .iter()
        .filter(|c| c.estimator == "sketch")
        .map(|c| c.estimator_bytes)
        .sum();
    if sketch > 0 {
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "Sketch estimator memory: {:.1}x less than exact ({} B vs {} B summed \
             across cells) at identical control decisions.",
            exact as f64 / sketch as f64,
            sketch,
            exact
        );
    }
    md
}

/// Renders the datapath-throughput sweep as a markdown table.
fn render_throughput_markdown(points: &[ThroughputPoint]) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "## Datapath throughput — rolling hotspot under PAM, by batch size\n"
    );
    let _ = writeln!(
        md,
        "Simulated packets per wall-clock second (machine-dependent, reported \
         for reading only — the gate never compares it)."
    );
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "| batch | wall ms | sim pkts/s | speedup | injected | delivered | p99 µs |"
    );
    let _ = writeln!(md, "|---:|---:|---:|---:|---:|---:|---:|");
    let reference = points.first().map(|p| p.wall_secs).unwrap_or(0.0);
    for point in points {
        let pkts_per_sec = if point.wall_secs > 0.0 {
            point.injected as f64 / point.wall_secs
        } else {
            0.0
        };
        let speedup = if point.wall_secs > 0.0 {
            reference / point.wall_secs
        } else {
            0.0
        };
        let _ = writeln!(
            md,
            "| {} | {:.1} | {:.0} | {:.2}x | {} | {} | {:.1} |",
            point.batch,
            point.wall_secs * 1e3,
            pkts_per_sec,
            speedup,
            point.injected,
            point.delivered,
            point.p99_us
        );
    }
    md
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fleet_bench: {e}");
            eprintln!(
                "usage: fleet_bench [--out PATH] [--check BASELINE] [--summary PATH] \
                 [--timings PATH] [--tolerance F] [--servers N] [--jobs N] [--shards N] \
                 [--scale N,N,..] [--scale-shards N,N,..] [--scale-only] [--link-models] \
                 [--estimators] [--estimator-flows N] [--faults] [--faults-out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };

    let matrix = if args.scale_only {
        None
    } else {
        match run_fleet_matrix_opts(args.servers, args.jobs, args.shards) {
            Ok(pair) => Some(pair),
            Err(e) => {
                eprintln!("fleet_bench: matrix failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let (output, mut timings) = match matrix {
        Some((output, timings)) => {
            eprintln!(
                "fleet_bench: {} cells on {} thread(s) x {} shard(s) in {:.1} ms \
                 ({:.2}M events/s aggregate)",
                timings.cells.len(),
                timings.jobs,
                timings.shards,
                timings.total_wall_ms,
                timings.total_events as f64 / timings.total_wall_ms / 1e3,
            );
            (Some(output), timings)
        }
        None => (
            None,
            MatrixTimings {
                jobs: args.jobs,
                shards: args.shards,
                total_wall_ms: 0.0,
                total_events: 0,
                cells: Vec::new(),
                scale: Vec::new(),
            },
        ),
    };

    if !args.scale.is_empty() {
        // Every sharded point is byte-compared against its sequential
        // reference inside `run_scale_curve`; divergence is a hard error.
        timings.scale = match run_scale_curve(&args.scale, &args.scale_shards) {
            Ok(points) => points,
            Err(e) => {
                eprintln!("fleet_bench: scale curve failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for point in &timings.scale {
            eprintln!(
                "fleet_bench: scale {} servers x {} shard(s): {:.1} ms, {:.2}M events/s, {:.2}x",
                point.servers,
                point.shards,
                point.wall_ms,
                point.events_per_sec / 1e6,
                point.speedup
            );
        }
    }

    let link_model_cells: Vec<LinkModelCell> = if args.link_models {
        match run_link_model_ablation(args.servers) {
            Ok(cells) => {
                for cell in &cells {
                    eprintln!(
                        "fleet_bench: link-model {}/{}/{}: {} migration(s), {} round(s), \
                         mean round {:.1} µs, blackout {:.1} µs, p99 {:.1} µs",
                        cell.scenario,
                        cell.strategy,
                        cell.link_model,
                        cell.migrations,
                        cell.rounds,
                        cell.mean_round_us,
                        cell.blackout_us,
                        cell.p99_us
                    );
                }
                cells
            }
            Err(e) => {
                eprintln!("fleet_bench: link-model ablation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };

    let estimator_cells: Vec<EstimatorCell> = if args.estimators {
        match run_estimator_ablation(args.servers, args.estimator_flows) {
            Ok(cells) => {
                for cell in &cells {
                    eprintln!(
                        "fleet_bench: estimator {}/{}/{}: {} migration(s), {} scale-out(s), \
                         p99 {:.1} µs, {} drop(s), {} estimator byte(s)",
                        cell.scenario,
                        cell.strategy,
                        cell.estimator,
                        cell.migrations,
                        cell.scale_outs,
                        cell.p99_us,
                        cell.drops,
                        cell.estimator_bytes
                    );
                }
                cells
            }
            Err(e) => {
                eprintln!("fleet_bench: estimator ablation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };

    let fault_cells: Vec<FaultCell> = if args.faults {
        match run_fault_scenarios(args.servers, args.shards) {
            Ok(cells) => {
                for cell in &cells {
                    eprintln!(
                        "fleet_bench: faults {} ({} servers, {} fault(s)): audit OK — \
                         {} injected, {} delivered, {} black-holed, {} crash(es)/{} recover(ies), \
                         {} aborted migration(s), {} TargetCrash abort(s)",
                        cell.scenario,
                        cell.servers,
                        cell.faults,
                        cell.injected,
                        cell.delivered,
                        cell.fault_drops,
                        cell.server_crashes,
                        cell.server_recoveries,
                        cell.aborted_migrations,
                        cell.target_crashes
                    );
                }
                cells
            }
            Err(e) => {
                eprintln!("fleet_bench: fault scenarios failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };
    if let Some(path) = &args.faults_out {
        let json = match serde_json::to_string(&fault_cells) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("fleet_bench: serializing fault cells: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("fleet_bench: writing fault cells {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &args.timings {
        let json = match serde_json::to_string(&timings) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("fleet_bench: serializing timings: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("fleet_bench: writing timings {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(output) = &output {
        let json = match serde_json::to_string(output) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("fleet_bench: serializing the report: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(path) = &args.out {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("fleet_bench: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        } else {
            println!("{json}");
        }
    }

    let baseline: Option<FleetBenchOutput> = match &args.check {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("fleet_bench: reading baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match serde_json::from_str(&text) {
                Ok(baseline) => Some(baseline),
                Err(e) => {
                    eprintln!("fleet_bench: parsing baseline {path}: {e:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let gate_ok = match (&baseline, &output) {
        (Some(baseline), Some(output)) => run_gate(baseline, output, args.tolerance),
        (Some(_), None) => {
            eprintln!("fleet_bench: --check needs the matrix; drop --scale-only");
            false
        }
        (None, _) => true,
    };

    if let Some(path) = &args.summary {
        let mut md = String::new();
        if let Some(output) = &output {
            md.push_str(&render_gate_markdown(
                baseline.as_ref(),
                output,
                args.tolerance,
            ));
            md.push('\n');
            md.push_str(&render_simulator_throughput_markdown(&timings));
            md.push('\n');
        }
        if !timings.scale.is_empty() {
            md.push_str(&render_scale_markdown(&timings.scale));
            md.push('\n');
        }
        if !link_model_cells.is_empty() {
            md.push_str(&render_link_models_markdown(&link_model_cells));
            md.push('\n');
        }
        if !estimator_cells.is_empty() {
            md.push_str(&render_estimators_markdown(&estimator_cells));
            md.push('\n');
        }
        if !fault_cells.is_empty() {
            md.push_str(&render_faults_markdown(&fault_cells));
            md.push('\n');
        }
        if output.is_some() {
            md.push_str(&render_throughput_markdown(&throughput_sweep(args.servers)));
        }
        if let Err(e) = std::fs::write(path, md) {
            eprintln!("fleet_bench: writing summary {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if gate_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
