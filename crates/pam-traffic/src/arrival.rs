//! Packet arrival processes.
//!
//! Given a target offered load and the size of the next packet, an arrival
//! process answers "how long after the previous packet does this one start?".
//! Three processes are provided: deterministic CBR pacing (what a DPDK packet
//! sender does), Poisson arrivals, and a two-state bursty on/off process that
//! stresses queues harder at the same mean rate.

use pam_sim::SimRng;
use pam_types::{ByteSize, Gbps, SimDuration};
use serde::{Deserialize, Serialize};

/// The arrival pacing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Constant bit rate: back-to-back pacing at exactly the offered load.
    Cbr,
    /// Poisson arrivals with the offered load as the mean rate.
    Poisson,
    /// Bursty on/off: bursts at `peak_factor` times the offered load
    /// alternating with idle gaps, preserving the mean.
    Bursty {
        /// Ratio of the in-burst rate to the mean rate (> 1).
        peak_factor: f64,
    },
}

impl ArrivalProcess {
    /// The inter-arrival gap before a packet of `size`, given the target
    /// `offered_load`. Returns zero for non-positive loads (caller treats
    /// that as "no traffic").
    pub fn next_gap(&self, offered_load: Gbps, size: ByteSize, rng: &mut SimRng) -> SimDuration {
        if offered_load.as_gbps() <= 0.0 {
            return SimDuration::ZERO;
        }
        let mean_gap_secs = size.as_bits() as f64 / offered_load.as_bits_per_sec();
        match self {
            ArrivalProcess::Cbr => SimDuration::from_secs_f64(mean_gap_secs),
            ArrivalProcess::Poisson => SimDuration::from_secs_f64(rng.exponential(mean_gap_secs)),
            ArrivalProcess::Bursty { peak_factor } => {
                let peak = peak_factor.max(1.0);
                // With probability 1/peak the packet is sent at the peak rate
                // (gap mean/peak); otherwise the gap is mean·(1 + 1/peak), so
                // the expected gap stays exactly `mean_gap_secs`.
                if rng.chance(1.0 / peak) {
                    SimDuration::from_secs_f64(mean_gap_secs / peak)
                } else {
                    SimDuration::from_secs_f64(mean_gap_secs * (1.0 + 1.0 / peak))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate_of(process: ArrivalProcess, offered: Gbps, size: ByteSize) -> Gbps {
        let mut rng = SimRng::seed_from(11);
        let n = 100_000u64;
        let total: SimDuration = (0..n)
            .map(|_| process.next_gap(offered, size, &mut rng))
            .sum();
        let bytes = size.as_bytes() as f64 * n as f64;
        Gbps::from_bytes_per_sec(bytes / total.as_secs_f64())
    }

    #[test]
    fn cbr_gap_matches_line_rate_exactly() {
        let gap = ArrivalProcess::Cbr.next_gap(
            Gbps::new(2.0),
            ByteSize::bytes(1000),
            &mut SimRng::seed_from(1),
        );
        // 8000 bits at 2 Gbps = 4 us.
        assert_eq!(gap, SimDuration::from_micros(4));
    }

    #[test]
    fn poisson_preserves_the_mean_rate() {
        let achieved = mean_rate_of(
            ArrivalProcess::Poisson,
            Gbps::new(3.0),
            ByteSize::bytes(512),
        );
        assert!(
            (achieved.as_gbps() - 3.0).abs() < 0.1,
            "achieved {achieved}"
        );
    }

    #[test]
    fn bursty_preserves_the_mean_rate() {
        let achieved = mean_rate_of(
            ArrivalProcess::Bursty { peak_factor: 4.0 },
            Gbps::new(2.0),
            ByteSize::bytes(800),
        );
        assert!(
            (achieved.as_gbps() - 2.0).abs() < 0.15,
            "achieved {achieved}"
        );
    }

    #[test]
    fn bursty_has_higher_gap_variance_than_cbr() {
        let mut rng = SimRng::seed_from(5);
        let offered = Gbps::new(2.0);
        let size = ByteSize::bytes(1000);
        let gaps = |p: ArrivalProcess, rng: &mut SimRng| -> Vec<f64> {
            (0..20_000)
                .map(|_| p.next_gap(offered, size, rng).as_secs_f64())
                .collect()
        };
        let variance = |xs: &[f64]| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64
        };
        let cbr = gaps(ArrivalProcess::Cbr, &mut rng);
        let bursty = gaps(ArrivalProcess::Bursty { peak_factor: 5.0 }, &mut rng);
        assert!(variance(&bursty) > 10.0 * variance(&cbr).max(1e-30));
    }

    #[test]
    fn zero_or_negative_load_yields_zero_gap() {
        let mut rng = SimRng::seed_from(1);
        assert_eq!(
            ArrivalProcess::Cbr.next_gap(Gbps::ZERO, ByteSize::bytes(64), &mut rng),
            SimDuration::ZERO
        );
        assert_eq!(
            ArrivalProcess::Poisson.next_gap(Gbps::new(-1.0), ByteSize::bytes(64), &mut rng),
            SimDuration::ZERO
        );
    }

    #[test]
    fn larger_packets_get_proportionally_longer_gaps() {
        let mut rng = SimRng::seed_from(2);
        let small = ArrivalProcess::Cbr.next_gap(Gbps::new(1.0), ByteSize::bytes(64), &mut rng);
        let large = ArrivalProcess::Cbr.next_gap(Gbps::new(1.0), ByteSize::bytes(1500), &mut rng);
        let ratio = large.as_nanos() as f64 / small.as_nanos() as f64;
        assert!((ratio - 1500.0 / 64.0).abs() < 0.05);
    }
}
