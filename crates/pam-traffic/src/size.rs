//! Packet-size profiles.

use pam_sim::SimRng;
use pam_types::ByteSize;
use serde::{Deserialize, Serialize};

/// The packet sizes the paper sweeps (64 B to 1500 B).
pub const PAPER_SWEEP_SIZES: [u64; 6] = [64, 128, 256, 512, 1024, 1500];

/// How packet sizes are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PacketSizeProfile {
    /// Every packet has the same size.
    Fixed(ByteSize),
    /// Sizes are drawn uniformly from the given set (the paper's sweep uses
    /// [`PAPER_SWEEP_SIZES`]).
    UniformChoice(Vec<ByteSize>),
    /// The classic simple IMIX: 64 B (58%), 576 B (33%), 1500 B (9%).
    Imix,
}

impl PacketSizeProfile {
    /// The paper's evaluation sweep as a uniform choice over
    /// [`PAPER_SWEEP_SIZES`].
    pub fn paper_sweep() -> Self {
        PacketSizeProfile::UniformChoice(
            PAPER_SWEEP_SIZES
                .iter()
                .map(|&b| ByteSize::bytes(b))
                .collect(),
        )
    }

    /// Draws one packet size.
    pub fn sample(&self, rng: &mut SimRng) -> ByteSize {
        match self {
            PacketSizeProfile::Fixed(size) => *size,
            PacketSizeProfile::UniformChoice(sizes) => {
                if sizes.is_empty() {
                    ByteSize::MIN_FRAME
                } else {
                    sizes[rng.index(sizes.len())]
                }
            }
            PacketSizeProfile::Imix => {
                let u = rng.uniform();
                if u < 0.58 {
                    ByteSize::bytes(64)
                } else if u < 0.91 {
                    ByteSize::bytes(576)
                } else {
                    ByteSize::bytes(1500)
                }
            }
        }
    }

    /// The mean packet size of the profile (exact, not sampled).
    pub fn mean_size(&self) -> f64 {
        match self {
            PacketSizeProfile::Fixed(size) => size.as_bytes() as f64,
            PacketSizeProfile::UniformChoice(sizes) => {
                if sizes.is_empty() {
                    ByteSize::MIN_FRAME.as_bytes() as f64
                } else {
                    sizes.iter().map(|s| s.as_bytes() as f64).sum::<f64>() / sizes.len() as f64
                }
            }
            PacketSizeProfile::Imix => 0.58 * 64.0 + 0.33 * 576.0 + 0.09 * 1500.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_profile_is_constant() {
        let profile = PacketSizeProfile::Fixed(ByteSize::bytes(512));
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(profile.sample(&mut rng), ByteSize::bytes(512));
        }
        assert_eq!(profile.mean_size(), 512.0);
    }

    #[test]
    fn paper_sweep_covers_all_sizes() {
        let profile = PacketSizeProfile::paper_sweep();
        let mut rng = SimRng::seed_from(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(profile.sample(&mut rng).as_bytes());
        }
        for expected in PAPER_SWEEP_SIZES {
            assert!(seen.contains(&expected), "size {expected} never drawn");
        }
        assert!((profile.mean_size() - 580.667).abs() < 0.01);
    }

    #[test]
    fn imix_mix_is_roughly_correct() {
        let profile = PacketSizeProfile::Imix;
        let mut rng = SimRng::seed_from(3);
        let n = 50_000;
        let small = (0..n)
            .filter(|_| profile.sample(&mut rng) == ByteSize::bytes(64))
            .count();
        let fraction = small as f64 / n as f64;
        assert!((fraction - 0.58).abs() < 0.02, "64B fraction {fraction}");
        assert!((profile.mean_size() - (0.58 * 64.0 + 0.33 * 576.0 + 0.09 * 1500.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_choice_falls_back_to_min_frame() {
        let profile = PacketSizeProfile::UniformChoice(vec![]);
        let mut rng = SimRng::seed_from(4);
        assert_eq!(profile.sample(&mut rng), ByteSize::MIN_FRAME);
        assert_eq!(profile.mean_size(), 64.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let profile = PacketSizeProfile::paper_sweep();
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let seq_a: Vec<_> = (0..64).map(|_| profile.sample(&mut a)).collect();
        let seq_b: Vec<_> = (0..64).map(|_| profile.sample(&mut b)).collect();
        assert_eq!(seq_a, seq_b);
    }
}
