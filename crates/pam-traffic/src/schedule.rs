//! Piecewise-constant offered-load schedules.
//!
//! The PAM scenario is inherently dynamic: the chain runs comfortably, then
//! "network traffic fluctuates" (poster §1) and the SmartNIC becomes
//! overloaded. A [`TrafficSchedule`] describes that fluctuation as a sequence
//! of phases, each holding a constant offered load for a duration; the trace
//! synthesizer consults it for the load in force at each packet's send time.

use pam_types::{Gbps, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One constant-load phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Offered load during the phase.
    pub load: Gbps,
    /// How long the phase lasts.
    pub duration: SimDuration,
}

impl Phase {
    /// Creates a phase.
    pub fn new(load: Gbps, duration: SimDuration) -> Self {
        Phase { load, duration }
    }
}

/// A piecewise-constant offered-load schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSchedule {
    phases: Vec<Phase>,
}

impl TrafficSchedule {
    /// A schedule with a single constant phase.
    pub fn constant(load: Gbps, duration: SimDuration) -> Self {
        TrafficSchedule {
            phases: vec![Phase::new(load, duration)],
        }
    }

    /// A schedule built from explicit phases.
    pub fn from_phases(phases: Vec<Phase>) -> Self {
        TrafficSchedule { phases }
    }

    /// The paper's overload scenario: a baseline load for `baseline_for`,
    /// then a step up to `overload` for the rest of the run.
    pub fn step_overload(
        baseline: Gbps,
        baseline_for: SimDuration,
        overload: Gbps,
        overload_for: SimDuration,
    ) -> Self {
        TrafficSchedule {
            phases: vec![
                Phase::new(baseline, baseline_for),
                Phase::new(overload, overload_for),
            ],
        }
    }

    /// The phases of the schedule.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total duration covered by the schedule.
    pub fn total_duration(&self) -> SimDuration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// The offered load in force at `time` (zero after the schedule ends).
    pub fn load_at(&self, time: SimTime) -> Gbps {
        let mut start = SimTime::ZERO;
        for phase in &self.phases {
            let end = start + phase.duration;
            if time < end {
                return phase.load;
            }
            start = end;
        }
        Gbps::ZERO
    }

    /// The time at which the phase containing `time` ends (`None` after the
    /// schedule ends).
    pub fn phase_end_after(&self, time: SimTime) -> Option<SimTime> {
        let mut start = SimTime::ZERO;
        for phase in &self.phases {
            let end = start + phase.duration;
            if time < end {
                return Some(end);
            }
            start = end;
        }
        None
    }

    /// The mean offered load over the whole schedule.
    pub fn mean_load(&self) -> Gbps {
        let total = self.total_duration().as_secs_f64();
        if total <= 0.0 {
            return Gbps::ZERO;
        }
        let weighted: f64 = self
            .phases
            .iter()
            .map(|p| p.load.as_gbps() * p.duration.as_secs_f64())
            .sum();
        Gbps::new(weighted / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> TrafficSchedule {
        TrafficSchedule::step_overload(
            Gbps::new(1.5),
            SimDuration::from_millis(10),
            Gbps::new(2.2),
            SimDuration::from_millis(30),
        )
    }

    #[test]
    fn constant_schedule() {
        let s = TrafficSchedule::constant(Gbps::new(2.0), SimDuration::from_millis(5));
        assert_eq!(s.load_at(SimTime::ZERO), Gbps::new(2.0));
        assert_eq!(s.load_at(SimTime::from_millis(4)), Gbps::new(2.0));
        assert_eq!(s.load_at(SimTime::from_millis(5)), Gbps::ZERO);
        assert_eq!(s.total_duration(), SimDuration::from_millis(5));
        assert_eq!(s.mean_load(), Gbps::new(2.0));
        assert_eq!(s.phases().len(), 1);
    }

    #[test]
    fn step_overload_switches_load_at_the_boundary() {
        let s = step();
        assert_eq!(s.load_at(SimTime::from_millis(3)), Gbps::new(1.5));
        assert_eq!(s.load_at(SimTime::from_millis(10)), Gbps::new(2.2));
        assert_eq!(s.load_at(SimTime::from_millis(39)), Gbps::new(2.2));
        assert_eq!(s.load_at(SimTime::from_millis(40)), Gbps::ZERO);
        assert_eq!(s.total_duration(), SimDuration::from_millis(40));
    }

    #[test]
    fn phase_end_lookup() {
        let s = step();
        assert_eq!(
            s.phase_end_after(SimTime::ZERO),
            Some(SimTime::from_millis(10))
        );
        assert_eq!(
            s.phase_end_after(SimTime::from_millis(12)),
            Some(SimTime::from_millis(40))
        );
        assert_eq!(s.phase_end_after(SimTime::from_millis(40)), None);
    }

    #[test]
    fn mean_load_is_duration_weighted() {
        let s = step();
        let expected = (1.5 * 10.0 + 2.2 * 30.0) / 40.0;
        assert!((s.mean_load().as_gbps() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_is_silent() {
        let s = TrafficSchedule::from_phases(vec![]);
        assert_eq!(s.load_at(SimTime::ZERO), Gbps::ZERO);
        assert_eq!(s.total_duration(), SimDuration::ZERO);
        assert_eq!(s.mean_load(), Gbps::ZERO);
        assert_eq!(s.phase_end_after(SimTime::ZERO), None);
    }
}
