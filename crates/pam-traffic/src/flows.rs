//! Synthetic flow populations.
//!
//! Real traffic is made of flows whose popularity is heavily skewed: a few
//! elephants carry most bytes while most flows are mice. The generator builds
//! a fixed pool of synthetic 5-tuples and draws the flow of each packet from
//! a Zipf distribution over that pool, so stateful vNFs (monitor, NAT, load
//! balancer) see realistic flow-table sizes and hit rates.

use std::net::Ipv4Addr;

use pam_sim::SimRng;
use pam_wire::FiveTuple;
use serde::{Deserialize, Serialize};

/// Configuration of a flow population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowGeneratorConfig {
    /// Number of distinct flows in the pool.
    pub flow_count: usize,
    /// Zipf exponent of flow popularity (0 = uniform, ~1 = realistic skew).
    pub zipf_exponent: f64,
    /// Fraction of flows that are TCP (the rest are UDP).
    pub tcp_fraction: f64,
}

impl Default for FlowGeneratorConfig {
    fn default() -> Self {
        FlowGeneratorConfig {
            flow_count: 10_000,
            zipf_exponent: 1.0,
            tcp_fraction: 0.8,
        }
    }
}

/// A deterministic pool of flows with skewed popularity.
#[derive(Debug, Clone)]
pub struct FlowGenerator {
    flows: Vec<FiveTuple>,
    popularity_cdf: Vec<f64>,
}

impl FlowGenerator {
    /// Builds a flow pool from its configuration, deterministically derived
    /// from `rng`'s seed.
    pub fn new(config: &FlowGeneratorConfig, rng: &mut SimRng) -> Self {
        let count = config.flow_count.max(1);
        let mut flows = Vec::with_capacity(count);
        for i in 0..count {
            let i = i as u32;
            let src = Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8);
            let dst = Ipv4Addr::new(198, 18, (i >> 8) as u8, (i % 251) as u8);
            let src_port = 1024 + (i % 60_000) as u16;
            let dst_port = match i % 5 {
                0 => 80,
                1 => 443,
                2 => 53,
                3 => 8080,
                _ => 5060,
            };
            let is_tcp = rng.chance(config.tcp_fraction);
            let tuple = if is_tcp {
                FiveTuple::tcp(src, src_port, dst, dst_port)
            } else {
                FiveTuple::udp(src, src_port, dst, dst_port)
            };
            flows.push(tuple);
        }
        // Zipf popularity over ranks 1..=count; the flow order is shuffled so
        // flow index does not correlate with addresses.
        rng.shuffle(&mut flows);
        let exponent = config.zipf_exponent.max(0.0);
        let mut cdf = Vec::with_capacity(count);
        let mut acc = 0.0;
        for rank in 1..=count {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        FlowGenerator {
            flows,
            popularity_cdf: cdf,
        }
    }

    /// Number of distinct flows in the pool.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Draws the flow of the next packet.
    pub fn sample(&self, rng: &mut SimRng) -> FiveTuple {
        let rank = rng.zipf_rank(&self.popularity_cdf);
        self.flows[rank.min(self.flows.len() - 1)]
    }

    /// All flows in the pool.
    pub fn flows(&self) -> &[FiveTuple] {
        &self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_wire::IpProtocol;
    use std::collections::HashMap;

    fn generator(count: usize, exponent: f64) -> (FlowGenerator, SimRng) {
        let mut rng = SimRng::seed_from(42);
        let config = FlowGeneratorConfig {
            flow_count: count,
            zipf_exponent: exponent,
            tcp_fraction: 0.8,
        };
        let gen = FlowGenerator::new(&config, &mut rng);
        (gen, rng)
    }

    #[test]
    fn pool_has_requested_size_and_distinct_tuples() {
        let (gen, _) = generator(5000, 1.0);
        assert_eq!(gen.flow_count(), 5000);
        let distinct: std::collections::HashSet<_> = gen.flows().iter().collect();
        assert_eq!(distinct.len(), 5000);
    }

    #[test]
    fn sampling_is_skewed_for_positive_exponent() {
        let (gen, mut rng) = generator(1000, 1.2);
        let mut counts: HashMap<FiveTuple, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(gen.sample(&mut rng)).or_default() += 1;
        }
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // The most popular flow should be sampled far more often than the median.
        assert!(sorted[0] > 20 * sorted[sorted.len() / 2].max(1));
        // But many flows are still seen.
        assert!(counts.len() > 300);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let (gen, mut rng) = generator(100, 0.0);
        let mut counts: HashMap<FiveTuple, u64> = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(gen.sample(&mut rng)).or_default() += 1;
        }
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        assert!(
            max < 3 * min,
            "uniform sampling spread too wide: {min}..{max}"
        );
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let (gen_a, mut rng_a) = generator(500, 1.0);
        let (gen_b, mut rng_b) = generator(500, 1.0);
        assert_eq!(gen_a.flows(), gen_b.flows());
        let draws_a: Vec<_> = (0..50).map(|_| gen_a.sample(&mut rng_a)).collect();
        let draws_b: Vec<_> = (0..50).map(|_| gen_b.sample(&mut rng_b)).collect();
        assert_eq!(draws_a, draws_b);
    }

    #[test]
    fn tcp_fraction_is_respected() {
        let mut rng = SimRng::seed_from(7);
        let config = FlowGeneratorConfig {
            flow_count: 10_000,
            zipf_exponent: 1.0,
            tcp_fraction: 0.8,
        };
        let gen = FlowGenerator::new(&config, &mut rng);
        let tcp = gen
            .flows()
            .iter()
            .filter(|t| t.protocol == IpProtocol::Tcp)
            .count();
        let fraction = tcp as f64 / gen.flow_count() as f64;
        assert!((fraction - 0.8).abs() < 0.03, "tcp fraction {fraction}");
    }

    #[test]
    fn single_flow_pool_works() {
        let (gen, mut rng) = generator(1, 1.0);
        assert_eq!(gen.flow_count(), 1);
        assert_eq!(gen.sample(&mut rng), gen.flows()[0]);
    }
}
