//! Synthetic traffic generation.
//!
//! The paper's evaluation drives the service chain with a DPDK packet sender
//! sweeping packet sizes from 64 B to 1500 B. This crate is the simulated
//! counterpart: it synthesises reproducible packet streams — real frames
//! built with `pam-wire`, grouped into flows, paced by an arrival process —
//! that the runtime feeds into the chain.
//!
//! * [`PacketSizeProfile`] — fixed sizes, the paper's 64–1500 B sweep, or the
//!   classic IMIX mix.
//! * [`FlowGenerator`] — a pool of synthetic 5-tuples with Zipf-distributed
//!   popularity (a few heavy flows, many mice), as seen in real traces.
//! * [`ArrivalProcess`] — constant-bit-rate, Poisson or bursty on/off pacing
//!   towards a target offered load.
//! * [`TrafficSchedule`] — piecewise-constant offered load over time, used to
//!   create the traffic fluctuation that overloads the SmartNIC mid-run.
//! * [`TraceSynthesizer`] — combines the above into a deterministic stream of
//!   [`pam_nf::Packet`]s with ingress timestamps.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod arrival;
pub mod flows;
pub mod schedule;
pub mod size;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use flows::{FlowGenerator, FlowGeneratorConfig};
pub use schedule::{Phase, TrafficSchedule};
pub use size::PacketSizeProfile;
pub use trace::{TraceConfig, TraceSynthesizer};
