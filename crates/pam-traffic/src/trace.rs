//! The trace synthesizer: turning profiles into a packet stream.

use pam_nf::Packet;
use pam_sim::SimRng;
use pam_types::{Gbps, SimDuration, SimTime};
use pam_wire::{PacketBuilder, TransportKind};
use serde::{Deserialize, Serialize};

use crate::arrival::ArrivalProcess;
use crate::flows::{FlowGenerator, FlowGeneratorConfig};
use crate::schedule::TrafficSchedule;
use crate::size::PacketSizeProfile;

/// Configuration of a synthetic trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Packet-size profile.
    pub sizes: PacketSizeProfile,
    /// Flow population.
    pub flows: FlowGeneratorConfig,
    /// Arrival pacing.
    pub arrival: ArrivalProcess,
    /// Offered load over time.
    pub schedule: TrafficSchedule,
    /// RNG seed (the same seed reproduces the same trace byte-for-byte).
    pub seed: u64,
}

impl TraceConfig {
    /// The default evaluation trace: the paper's packet-size sweep, a 10 000
    /// flow Zipf population, CBR pacing and a constant offered load.
    pub fn evaluation_default(load: Gbps, duration: SimDuration) -> Self {
        TraceConfig {
            sizes: PacketSizeProfile::paper_sweep(),
            flows: FlowGeneratorConfig::default(),
            arrival: ArrivalProcess::Cbr,
            schedule: TrafficSchedule::constant(load, duration),
            seed: DEFAULT_TRACE_SEED,
        }
    }
}

/// The default seed used by evaluation traces (the conference date of the
/// poster, so reproduction runs are recognisably deterministic).
pub const DEFAULT_TRACE_SEED: u64 = 20180820;

/// A generator of timestamped packets following a [`TraceConfig`].
#[derive(Debug)]
pub struct TraceSynthesizer {
    config: TraceConfig,
    flow_gen: FlowGenerator,
    rng: SimRng,
    next_time: SimTime,
    next_id: u64,
    emitted_bytes: u64,
}

impl TraceSynthesizer {
    /// Creates a synthesizer from its configuration.
    pub fn new(config: TraceConfig) -> Self {
        let rng = SimRng::seed_from(config.seed);
        let flow_gen = FlowGenerator::new(&config.flows, &mut rng.fork(1));
        TraceSynthesizer {
            config,
            flow_gen,
            rng,
            next_time: SimTime::ZERO,
            next_id: 0,
            emitted_bytes: 0,
        }
    }

    /// The configuration this synthesizer follows.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Total bytes emitted so far.
    pub fn emitted_bytes(&self) -> u64 {
        self.emitted_bytes
    }

    /// Number of packets emitted so far.
    pub fn emitted_packets(&self) -> u64 {
        self.next_id
    }

    /// Produces the next packet, or `None` when the schedule has ended.
    pub fn next_packet(&mut self) -> Option<(SimTime, Packet)> {
        // Find the offered load at the current send time, skipping over any
        // zero-load gaps (there are none in the provided schedules, but a
        // custom schedule may include quiet phases).
        let mut load = self.config.schedule.load_at(self.next_time);
        while load.as_gbps() <= 0.0 {
            self.next_time = self.config.schedule.phase_end_after(self.next_time)?;
            load = self.config.schedule.load_at(self.next_time);
        }

        let size = self.config.sizes.sample(&mut self.rng);
        let tuple = self.flow_gen.sample(&mut self.rng);
        let transport = match tuple.protocol {
            pam_wire::IpProtocol::Tcp => TransportKind::Tcp,
            _ => TransportKind::Udp,
        };
        let bytes = PacketBuilder::new()
            .five_tuple(tuple)
            .transport(transport)
            .size(size)
            .build();
        let send_time = self.next_time;
        let packet = Packet::from_bytes(self.next_id, bytes, send_time);
        self.next_id += 1;
        self.emitted_bytes += packet.size().as_bytes();

        let gap = self
            .config
            .arrival
            .next_gap(load, packet.size(), &mut self.rng);
        // Guard against zero gaps (degenerate loads) so time always advances.
        self.next_time = send_time + gap.max(SimDuration::from_nanos(1));
        Some((send_time, packet))
    }

    /// Collects the entire trace into a vector (convenient for tests and for
    /// benches that want to reuse one trace across strategies).
    pub fn collect_all(mut self) -> Vec<(SimTime, Packet)> {
        let mut out = Vec::new();
        while let Some(item) = self.next_packet() {
            out.push(item);
        }
        out
    }

    /// The offered throughput achieved so far (emitted bytes over elapsed
    /// trace time), useful to sanity-check a configuration.
    pub fn offered_throughput(&self) -> Gbps {
        let elapsed = self.next_time.as_secs_f64();
        if elapsed <= 0.0 {
            return Gbps::ZERO;
        }
        Gbps::from_bytes_per_sec(self.emitted_bytes as f64 / elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::ByteSize;

    fn config(load: f64, millis: u64, seed: u64) -> TraceConfig {
        TraceConfig {
            sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
            flows: FlowGeneratorConfig {
                flow_count: 100,
                zipf_exponent: 1.0,
                tcp_fraction: 0.5,
            },
            arrival: ArrivalProcess::Cbr,
            schedule: TrafficSchedule::constant(Gbps::new(load), SimDuration::from_millis(millis)),
            seed,
        }
    }

    #[test]
    fn offered_load_matches_schedule() {
        let synth = TraceSynthesizer::new(config(2.0, 5, 1));
        let packets = synth.collect_all();
        assert!(!packets.is_empty());
        let total_bytes: u64 = packets.iter().map(|(_, p)| p.size().as_bytes()).sum();
        let last = packets.last().unwrap().0.as_secs_f64();
        let achieved = total_bytes as f64 * 8.0 / last / 1e9;
        assert!((achieved - 2.0).abs() < 0.05, "achieved {achieved} Gbps");
    }

    #[test]
    fn timestamps_are_monotonic_and_within_schedule() {
        let packets = TraceSynthesizer::new(config(1.0, 3, 2)).collect_all();
        for pair in packets.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        assert!(packets.last().unwrap().0 < SimTime::from_millis(3));
    }

    #[test]
    fn same_seed_same_trace_different_seed_different_trace() {
        let a = TraceSynthesizer::new(config(1.0, 2, 7)).collect_all();
        let b = TraceSynthesizer::new(config(1.0, 2, 7)).collect_all();
        let c = TraceSynthesizer::new(config(1.0, 2, 8)).collect_all();
        assert_eq!(a.len(), b.len());
        for ((ta, pa), (tb, pb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(pa.bytes(), pb.bytes());
        }
        let identical_to_c = a.len() == c.len()
            && a.iter()
                .zip(&c)
                .all(|((ta, pa), (tc, pc))| ta == tc && pa.bytes() == pc.bytes());
        assert!(!identical_to_c, "different seeds should differ");
    }

    #[test]
    fn packets_parse_and_belong_to_the_flow_pool() {
        let synth = TraceSynthesizer::new(config(1.0, 1, 3));
        let flow_pool: std::collections::HashSet<_> =
            synth.flow_gen.flows().iter().copied().collect();
        let packets = synth.collect_all();
        for (_, packet) in &packets {
            let tuple = packet.five_tuple().expect("generated packets parse");
            assert!(flow_pool.contains(&tuple), "unknown tuple {tuple}");
        }
    }

    #[test]
    fn step_schedule_produces_more_traffic_in_the_heavy_phase() {
        let cfg = TraceConfig {
            sizes: PacketSizeProfile::Fixed(ByteSize::bytes(1000)),
            flows: FlowGeneratorConfig {
                flow_count: 10,
                zipf_exponent: 0.0,
                tcp_fraction: 1.0,
            },
            arrival: ArrivalProcess::Cbr,
            schedule: TrafficSchedule::step_overload(
                Gbps::new(1.0),
                SimDuration::from_millis(5),
                Gbps::new(3.0),
                SimDuration::from_millis(5),
            ),
            seed: 4,
        };
        let packets = TraceSynthesizer::new(cfg).collect_all();
        let boundary = SimTime::from_millis(5);
        let first: usize = packets.iter().filter(|(t, _)| *t < boundary).count();
        let second = packets.len() - first;
        let ratio = second as f64 / first as f64;
        assert!((ratio - 3.0).abs() < 0.2, "phase packet ratio {ratio}");
    }

    #[test]
    fn counters_track_emission() {
        let mut synth = TraceSynthesizer::new(config(1.0, 1, 5));
        assert_eq!(synth.emitted_packets(), 0);
        let mut count = 0;
        while synth.next_packet().is_some() {
            count += 1;
        }
        assert_eq!(synth.emitted_packets(), count);
        assert_eq!(synth.emitted_bytes(), count * 512);
        assert!((synth.offered_throughput().as_gbps() - 1.0).abs() < 0.05);
        assert_eq!(synth.config().seed, 5);
    }

    #[test]
    fn evaluation_default_uses_paper_sweep() {
        let cfg = TraceConfig::evaluation_default(Gbps::new(2.2), SimDuration::from_millis(1));
        assert_eq!(cfg.sizes, PacketSizeProfile::paper_sweep());
        assert_eq!(cfg.arrival, ArrivalProcess::Cbr);
    }
}
