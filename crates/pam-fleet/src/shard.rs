//! Sharded parallel execution of one fleet, byte-identical to [`Fleet::run`].
//!
//! [`Fleet::run_sharded`] splits one fleet simulation across scoped worker
//! threads with **conservative time-window synchronisation** and produces the
//! *exact* state — report, counters, event totals — of the sequential run at
//! any shard count. The design separates what must be ordered from what is
//! expensive:
//!
//! * **Sequencing stays sequential.** The fleet's own deterministic
//!   [`pam_sim::EventQueue`] carries only home-arrival and control-tick
//!   events, and arrival streams are pure per-server seeded traces — so the
//!   caller's thread can replay the queue's exact global `(time, seq)` pop
//!   order cheaply, parking each due packet on its home server and appending
//!   `(time, home)` to its group's order list. Every `schedule` call happens
//!   on this thread in the same order as in [`Fleet::run`], so equal-time
//!   cross-server ties (common under CBR traffic) resolve identically and
//!   [`Fleet::events_scheduled`] matches to the event.
//! * **Execution parallelises.** The expensive work — routing each packet
//!   through the steering table into a server's [`ChainRuntime`]
//!   (`drain_until` + `submit`) and draining every runtime to the window end
//!   — runs on worker lanes at each barrier.
//!
//! A **window** is one control interval: the orchestrator only re-steers
//! flows at control ticks, so the steering table is frozen mid-window and a
//! [`ShardPlan`] built from it is valid for the whole window. Every active
//! spill is a zero-lookahead channel (a re-steered packet reaches its
//! recipient at its original arrival instant), so the plan merges
//! spill-connected servers into one *group* executed sequentially on one
//! lane; independent servers parallelise freely. At the tick barrier the
//! sequential controller runs the unchanged decision ladder (scale-out
//! handoffs over the shared interconnect, scale-in, local migration) and the
//! plan is rebuilt for the next window.
//!
//! Determinism argument, per server runtime: the sequence of
//! `drain_until`/`submit` calls it observes is identical to the sequential
//! run's — same packets, same times, same relative order (the group order
//! list is a subsequence of the global pop order, and extra `drain_until`
//! calls at window ends are idempotent no-ops the sequential tick performs
//! too). Runtimes are deterministic functions of their call sequence, and all
//! cross-server merges (steering counters, per-tick byte loads) are
//! order-independent `u64` sums, so the merged report is byte-identical.
//!
//! Wall-clock measurements ([`ShardRunStats`]) are a side channel for the
//! benchmark harness and never enter the gated report; this module is the
//! only simulation code allowed to touch `std::time::Instant` (enforced by
//! `scripts/lint_determinism.sh`, which also pins scoped threads to this
//! module and the experiment harness).
//!
//! [`ChainRuntime`]: pam_runtime::ChainRuntime

use std::time::Instant;

use pam_sim::{ShardChannel, ShardPlan};
use pam_types::{ServerId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::controller::{Fleet, FleetEvent};
use crate::health::NodeHealth;
use crate::node::FleetServer;
use crate::steering::{SteeringStats, SteeringTable};

/// Wall-clock and event counters for one worker lane across a sharded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardLane {
    /// Packets this lane submitted into its runtimes.
    pub packets: u64,
    /// Data-plane events its runtimes scheduled while this lane owned them.
    pub events: u64,
    /// Wall-clock time the lane spent executing windows.
    pub busy_ms: f64,
    /// Wall-clock time the lane waited at barriers for slower lanes
    /// (window wall time minus its own busy time, summed over windows).
    pub barrier_wait_ms: f64,
}

/// What the sharded runner did: a machine-dependent side channel for the
/// benchmark harness's `--timings` output, never part of the gated report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardRunStats {
    /// The largest shard count any `run_sharded` call requested.
    pub shards: usize,
    /// Synchronisation windows executed (including partial final windows).
    pub windows: u64,
    /// Fewest independent groups seen in any window — the parallelism floor.
    pub groups_min: usize,
    /// Most independent groups seen in any window.
    pub groups_max: usize,
    /// Per-lane counters, indexed by lane; lanes beyond the group count of
    /// every window stay zero.
    pub lanes: Vec<ShardLane>,
}

/// One group's work for the current window: its servers (split-borrowed out
/// of the fleet) and the globally-ordered arrivals sequenced into the window.
struct GroupJob<'a> {
    /// `(server index, server)` pairs in ascending index order.
    members: Vec<(usize, &'a mut FleetServer)>,
    /// `(arrival time, home server)` in global `(time, seq)` pop order.
    order: &'a [(SimTime, ServerId)],
}

/// Executes one lane's groups sequentially: replays each group's sequenced
/// arrivals against the window-frozen steering table (packets whose target
/// is crashed are black-holed, exactly as the sequential driver does), then
/// drains every member runtime to the window end (the barrier). Returns the
/// lane's steering tally, packets submitted, runtime events scheduled,
/// fault drops and busy wall-clock milliseconds.
fn run_lane(
    jobs: &mut [GroupJob<'_>],
    steering: &SteeringTable,
    health: &NodeHealth,
    end: SimTime,
) -> (SteeringStats, u64, u64, u64, f64) {
    let clock = Instant::now();
    let mut stats = SteeringStats::default();
    let mut packets = 0u64;
    let mut events = 0u64;
    let mut fault_drops = 0u64;
    for job in jobs.iter_mut() {
        let before: u64 = job
            .members
            .iter()
            .map(|(_, server)| server.runtime().events_scheduled())
            .sum();
        for &(at, home) in job.order {
            let Ok(home_position) = job
                .members
                .binary_search_by_key(&home.index(), |(node, _)| *node)
            else {
                unreachable!("a sequenced arrival's home server is in its group");
            };
            let Some(packet) = job.members[home_position].1.take_parked() else {
                unreachable!("the sequencer parked one packet per order entry");
            };
            let target = steering.route_into(home, packet.flow_id(), &mut stats);
            if !health.is_alive(target) {
                // The target crashed and no survivor could take its flows:
                // count the black-holed packet and never submit it, matching
                // the sequential driver's `on_arrival`.
                fault_drops += 1;
                continue;
            }
            let Ok(target_position) = job
                .members
                .binary_search_by_key(&target.index(), |(node, _)| *node)
            else {
                unreachable!("spill channels keep recipients in the home's group");
            };
            let server = &mut job.members[target_position].1;
            server.note_arrival(packet.flow_id().raw(), packet.size());
            #[cfg(test)]
            server.log_submission(at, packet.flow_id().raw());
            let runtime = server.runtime_mut();
            runtime.drain_until(at);
            runtime.submit(at, packet);
            packets += 1;
        }
        for (_, server) in job.members.iter_mut() {
            server.runtime_mut().drain_until(end);
        }
        let after: u64 = job
            .members
            .iter()
            .map(|(_, server)| server.runtime().events_scheduled())
            .sum();
        events += after - before;
    }
    let busy_ms = clock.elapsed().as_secs_f64() * 1e3;
    (stats, packets, events, fault_drops, busy_ms)
}

impl Fleet {
    /// Runs the fleet until `until` with window execution spread over up to
    /// `shards` worker lanes. Produces byte-identical state to [`Fleet::run`]
    /// at any shard count; `shards <= 1` *is* [`Fleet::run`]. Returns the
    /// number of control ticks run. Sequential and sharded runs may be mixed
    /// freely on one fleet (both drive the same queue).
    pub fn run_sharded(&mut self, until: SimTime, shards: usize) -> u64 {
        if shards <= 1 {
            return self.run(until);
        }
        self.start();
        let ticks_before = self.control_steps;
        let interval = self.config.orchestrator.poll_interval;
        self.shard_stats.shards = self.shard_stats.shards.max(shards);
        if self.shard_stats.lanes.len() < shards {
            self.shard_stats.lanes.resize(shards, ShardLane::default());
        }
        let mut plan = self.shard_plan(interval);
        let mut orders: Vec<Vec<(SimTime, ServerId)>> = vec![Vec::new(); plan.groups().len()];
        loop {
            let at_end = match self.events.peek_time() {
                None => true,
                Some(next) => next > until,
            };
            if at_end {
                // Partial final window: execute what was sequenced so far and
                // drain every runtime to `until`, exactly where the
                // sequential run's final drain loop would leave them.
                self.execute_window(&plan, &orders, until, shards);
                break;
            }
            let Some((now, event)) = self.events.pop() else {
                unreachable!("peeked event must pop");
            };
            match event {
                FleetEvent::Arrival(home) => {
                    if let Some((send_time, packet)) = self.servers[home.index()].take_pending() {
                        debug_assert_eq!(
                            send_time, now,
                            "arrival event fires at the packet's send time"
                        );
                        debug_assert!(
                            plan.is_safe(self.last_tick, now),
                            "sequenced arrival past the window's safe horizon"
                        );
                        orders[plan.group_of(home.index())].push((now, home));
                        self.servers[home.index()].park(packet);
                    }
                    if let Some(at) = self.servers[home.index()].next_arrival() {
                        self.events.schedule(at, FleetEvent::Arrival(home));
                    }
                }
                FleetEvent::ControlTick => {
                    self.execute_window(&plan, &orders, now, shards);
                    self.control_tick(now);
                    self.events
                        .schedule(now + interval, FleetEvent::ControlTick);
                    // The tick may have re-steered flows: re-plan the groups
                    // for the next window against the updated table.
                    plan = self.shard_plan(interval);
                    orders.clear();
                    orders.resize(plan.groups().len(), Vec::new());
                }
                // Fault-plan events are window barriers, exactly like the
                // control tick: everything sequenced so far executes against
                // the pre-fault state, the fault (or restore) applies on the
                // caller's thread, and the groups are re-planned — a crash
                // re-steers flows (failover spill), so the old plan's groups
                // may no longer co-schedule the right servers.
                FleetEvent::Fault(index) => {
                    self.execute_window(&plan, &orders, now, shards);
                    self.apply_fault(now, index);
                    plan = self.shard_plan(interval);
                    orders.clear();
                    orders.resize(plan.groups().len(), Vec::new());
                }
                FleetEvent::LinkRestore(server) => {
                    self.execute_window(&plan, &orders, now, shards);
                    self.link_restore(now, server);
                    plan = self.shard_plan(interval);
                    orders.clear();
                    orders.resize(plan.groups().len(), Vec::new());
                }
                FleetEvent::SwingRestore(server) => {
                    self.execute_window(&plan, &orders, now, shards);
                    self.swing_restore(now, server);
                    plan = self.shard_plan(interval);
                    orders.clear();
                    orders.resize(plan.groups().len(), Vec::new());
                }
            }
        }
        for server in &mut self.servers {
            server.runtime_mut().drain_until(until);
        }
        self.control_steps - ticks_before
    }

    /// The conservative plan for the current steering table: one node per
    /// server; every active spill is a zero-lookahead channel (re-steered
    /// packets reach the recipient at their original arrival instant), so
    /// its endpoints are co-scheduled. Scale-out handoffs and controller
    /// decisions happen only at the tick barrier itself and need no channel
    /// — the barrier already orders them.
    fn shard_plan(&self, barrier: SimDuration) -> ShardPlan {
        let channels: Vec<ShardChannel> = (0..self.servers.len())
            .filter_map(|home| {
                self.steering
                    .spill_of(ServerId::from(home))
                    .map(|spill| ShardChannel {
                        from: home,
                        to: spill.to.index(),
                        lookahead: SimDuration::ZERO,
                    })
            })
            .collect();
        ShardPlan::conservative(self.servers.len(), &channels, barrier)
    }

    /// Executes one synchronisation window: deals the plan's groups onto
    /// worker lanes, replays each group's sequenced arrivals and drains every
    /// runtime to `end`, then merges the lanes' order-independent tallies.
    fn execute_window(
        &mut self,
        plan: &ShardPlan,
        orders: &[Vec<(SimTime, ServerId)>],
        end: SimTime,
        shards: usize,
    ) {
        debug_assert_eq!(orders.len(), plan.groups().len());
        let groups = plan.groups().len();
        if self.shard_stats.windows == 0 {
            self.shard_stats.groups_min = groups;
            self.shard_stats.groups_max = groups;
        } else {
            self.shard_stats.groups_min = self.shard_stats.groups_min.min(groups);
            self.shard_stats.groups_max = self.shard_stats.groups_max.max(groups);
        }
        self.shard_stats.windows += 1;

        let steering = &self.steering;
        let health = &self.health;
        let mut slots: Vec<Option<&mut FleetServer>> = self.servers.iter_mut().map(Some).collect();
        let mut lane_jobs: Vec<Vec<GroupJob<'_>>> = plan
            .lanes(shards)
            .iter()
            .map(|lane| {
                lane.iter()
                    .map(|&group| GroupJob {
                        order: orders[group].as_slice(),
                        members: plan.groups()[group]
                            .iter()
                            .map(|&node| {
                                let Some(server) = slots[node].take() else {
                                    unreachable!("plan groups partition the servers");
                                };
                                (node, server)
                            })
                            .collect(),
                    })
                    .collect()
            })
            .collect();

        let window_clock = Instant::now();
        let results: Vec<(SteeringStats, u64, u64, u64, f64)> = if lane_jobs.len() <= 1 {
            lane_jobs
                .iter_mut()
                .map(|jobs| run_lane(jobs, steering, health, end))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = lane_jobs
                    .into_iter()
                    .map(|mut jobs| scope.spawn(move || run_lane(&mut jobs, steering, health, end)))
                    .collect();
                // Join in lane order: the merge below is order-independent,
                // but a deterministic order keeps panics reproducible.
                handles
                    .into_iter()
                    .map(|handle| match handle.join() {
                        Ok(result) => result,
                        Err(panic) => std::panic::resume_unwind(panic),
                    })
                    .collect()
            })
        };
        let window_wall_ms = window_clock.elapsed().as_secs_f64() * 1e3;

        for (lane_index, (stats, packets, events, fault_drops, busy_ms)) in
            results.into_iter().enumerate()
        {
            self.steering.absorb(stats);
            self.fault_drops += fault_drops;
            let lane = &mut self.shard_stats.lanes[lane_index];
            lane.packets += packets;
            lane.events += events;
            lane.busy_ms += busy_ms;
            lane.barrier_wait_ms += (window_wall_ms - busy_ms).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FleetConfig;
    use crate::node::ServerSpec;
    use pam_core::{Placement, StrategyKind};
    use pam_nf::ServiceChainSpec;
    use pam_runtime::RuntimeConfig;
    use pam_traffic::{
        ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, Phase, TraceConfig, TrafficSchedule,
    };
    use pam_types::{ByteSize, Gbps};

    fn spec_with(schedule: TrafficSchedule, seed: u64) -> ServerSpec {
        ServerSpec {
            chain: ServiceChainSpec::figure1(),
            placement: Placement::figure1_initial(),
            runtime: RuntimeConfig::evaluation_default(),
            trace: TraceConfig {
                sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
                flows: FlowGeneratorConfig {
                    flow_count: 2000,
                    zipf_exponent: 1.0,
                    tcp_fraction: 0.8,
                },
                arrival: ArrivalProcess::Cbr,
                schedule,
                seed,
            },
        }
    }

    /// Server 0 takes a hopeless burst that forces cross-server scale-out
    /// (and later scale-in); servers 1..n idle — the scenario exercising
    /// spill groups, handoffs and window re-planning.
    fn hopeless_fleet(servers: usize, strategy: StrategyKind) -> Fleet {
        let hot = TrafficSchedule::from_phases(vec![
            Phase::new(Gbps::new(3.9), SimDuration::from_millis(10)),
            Phase::new(Gbps::new(0.3), SimDuration::from_millis(20)),
        ]);
        let mut specs = vec![spec_with(hot, 11)];
        for cold in 1..servers {
            specs.push(spec_with(
                TrafficSchedule::constant(Gbps::new(0.5), SimDuration::from_millis(30)),
                11 + cold as u64,
            ));
        }
        Fleet::new(specs, FleetConfig::with_strategy(strategy)).unwrap()
    }

    fn report_json(fleet: &Fleet) -> String {
        serde_json::to_string(&fleet.report()).unwrap()
    }

    #[test]
    fn sharded_run_is_byte_identical_to_sequential() {
        let mut sequential = hopeless_fleet(4, StrategyKind::Pam);
        sequential.run(SimTime::from_millis(30));
        for shards in [2, 3, 8] {
            let mut sharded = hopeless_fleet(4, StrategyKind::Pam);
            let ticks = sharded.run_sharded(SimTime::from_millis(30), shards);
            assert_eq!(ticks, 30, "1 ms cadence over 30 ms");
            assert_eq!(
                report_json(&sequential),
                report_json(&sharded),
                "{shards} shards diverged from the sequential run"
            );
            assert_eq!(
                sequential.events_scheduled(),
                sharded.events_scheduled(),
                "{shards} shards scheduled a different event count"
            );
            assert_eq!(sequential.scale_outs(), sharded.scale_outs());
            assert_eq!(sequential.scale_ins(), sharded.scale_ins());
            assert_eq!(sequential.log(), sharded.log());
        }
    }

    #[test]
    fn per_server_submission_sequences_match_the_sequential_run() {
        let mut sequential = hopeless_fleet(3, StrategyKind::Pam);
        sequential.run(SimTime::from_millis(30));
        let mut sharded = hopeless_fleet(3, StrategyKind::Pam);
        sharded.run_sharded(SimTime::from_millis(30), 3);
        for (a, b) in sequential.servers.iter().zip(&sharded.servers) {
            assert!(!a.submissions().is_empty(), "scenario feeds every server");
            assert_eq!(
                a.submissions(),
                b.submissions(),
                "server {:?} saw a different (time, flow) submission sequence",
                a.id()
            );
        }
    }

    #[test]
    fn sharded_runs_resume_and_mix_with_sequential_runs() {
        let mut whole = hopeless_fleet(2, StrategyKind::Pam);
        whole.run(SimTime::from_millis(30));
        let expected = report_json(&whole);

        let mut resumed = hopeless_fleet(2, StrategyKind::Pam);
        resumed.run_sharded(SimTime::from_millis(13), 4);
        resumed.run_sharded(SimTime::from_millis(30), 4);
        assert_eq!(expected, report_json(&resumed), "split sharded runs");

        let mut mixed = hopeless_fleet(2, StrategyKind::Pam);
        mixed.run(SimTime::from_millis(9));
        mixed.run_sharded(SimTime::from_millis(21), 2);
        mixed.run(SimTime::from_millis(30));
        assert_eq!(expected, report_json(&mixed), "mixed sequential/sharded");
    }

    #[test]
    fn one_shard_delegates_to_the_sequential_runner() {
        let mut fleet = hopeless_fleet(2, StrategyKind::Pam);
        fleet.run_sharded(SimTime::from_millis(30), 1);
        assert_eq!(fleet.shard_stats().windows, 0, "no windowed execution");
        assert!(fleet.shard_stats().lanes.is_empty());
    }

    #[test]
    fn shard_stats_account_every_submitted_packet() {
        let mut fleet = hopeless_fleet(4, StrategyKind::Pam);
        fleet.run_sharded(SimTime::from_millis(30), 4);
        let stats = fleet.shard_stats().clone();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.lanes.len(), 4);
        assert!(stats.windows >= 30, "one window per control tick");
        assert!(stats.groups_min >= 1 && stats.groups_max <= 4);
        assert!(
            stats.groups_min < 4,
            "the scale-out window co-schedules the spill pair"
        );
        let report = fleet.report();
        let submitted: u64 = stats.lanes.iter().map(|lane| lane.packets).sum();
        assert_eq!(submitted, report.totals.injected);
        let lane_events: u64 = stats.lanes.iter().map(|lane| lane.events).sum();
        let runtime_events: u64 = fleet
            .servers()
            .iter()
            .map(|server| server.runtime().events_scheduled())
            .sum();
        assert_eq!(lane_events, runtime_events);
    }

    #[test]
    fn window_plans_co_schedule_active_spills() {
        let mut fleet = hopeless_fleet(2, StrategyKind::Pam);
        fleet.run(SimTime::from_millis(5));
        assert!(fleet.scale_outs() > 0, "the burst forces a spill by 5 ms");
        let plan = fleet.shard_plan(fleet.config().orchestrator.poll_interval);
        assert_eq!(plan.groups().len(), 1, "spill pair shares a group");
        assert_eq!(
            plan.safe_horizon(),
            fleet.config().orchestrator.poll_interval
        );
    }

    /// The sequencer schedules exactly like the sequential run: drive both
    /// queues side by side and compare every `(time, event)` pop. This is the
    /// strongest form of the "identical `(time, seq)` sequences" property —
    /// checked at the fleet queue (the sequencer) here, and per server by
    /// `per_server_submission_sequences_match_the_sequential_run`.
    #[test]
    fn sequencer_pop_order_matches_the_sequential_run() {
        let mut sequential = hopeless_fleet(3, StrategyKind::Pam);
        let mut sharded = hopeless_fleet(3, StrategyKind::Pam);
        // Alternate 1 ms slices so both fleets interleave run styles.
        for slice in 1..=30u64 {
            let until = SimTime::from_millis(slice);
            sequential.run(until);
            sharded.run_sharded(until, 3);
            assert_eq!(
                sequential.events.scheduled_total(),
                sharded.events.scheduled_total(),
                "sequencer diverged by {slice} ms"
            );
            assert_eq!(
                sequential.events.peek_time(),
                sharded.events.peek_time(),
                "next event time diverged by {slice} ms"
            );
        }
        assert_eq!(report_json(&sequential), report_json(&sharded));
    }

    use pam_sim::{FaultEvent, FaultKind, FaultPlan};

    /// A schedule mixing every fault kind: server 0 crashes mid-burst and
    /// recovers, server 1's link flaps twice (overlapping), server 2's
    /// capacity swings.
    fn mixed_fault_plan() -> FaultPlan {
        FaultPlan::new(vec![
            FaultEvent {
                at: SimTime::from_millis(4),
                kind: FaultKind::ServerCrash {
                    server: ServerId::new(0),
                },
            },
            FaultEvent {
                at: SimTime::from_micros(6_200),
                kind: FaultKind::LinkFlap {
                    server: ServerId::new(1),
                    down_for: SimDuration::from_micros(700),
                },
            },
            FaultEvent {
                at: SimTime::from_micros(6_500),
                kind: FaultKind::LinkFlap {
                    server: ServerId::new(1),
                    down_for: SimDuration::from_micros(900),
                },
            },
            FaultEvent {
                at: SimTime::from_millis(9),
                kind: FaultKind::CapacitySwing {
                    server: ServerId::new(2),
                    factor: 0.35,
                    period: SimDuration::from_millis(2),
                },
            },
            FaultEvent {
                at: SimTime::from_millis(14),
                kind: FaultKind::ServerRecover {
                    server: ServerId::new(0),
                },
            },
        ])
    }

    #[test]
    fn sharded_run_with_faults_is_byte_identical_to_sequential() {
        let mut sequential = hopeless_fleet(4, StrategyKind::Pam);
        sequential.set_fault_plan(mixed_fault_plan()).unwrap();
        sequential.run(SimTime::from_millis(30));
        let report = sequential.report();
        assert_eq!(report.totals.server_crashes, 1, "the plan actually fired");
        assert_eq!(report.totals.server_recoveries, 1);
        for shards in [2, 3, 8] {
            let mut sharded = hopeless_fleet(4, StrategyKind::Pam);
            sharded.set_fault_plan(mixed_fault_plan()).unwrap();
            sharded.run_sharded(SimTime::from_millis(30), shards);
            assert_eq!(
                report_json(&sequential),
                report_json(&sharded),
                "{shards} shards diverged from the sequential faulted run"
            );
            assert_eq!(
                sequential.events_scheduled(),
                sharded.events_scheduled(),
                "{shards} shards scheduled a different event count under faults"
            );
            assert_eq!(sequential.log(), sharded.log());
            assert_eq!(sequential.fault_drops(), sharded.fault_drops());
        }
        // Mixed sequential/sharded resumption across fault instants too.
        let mut mixed = hopeless_fleet(4, StrategyKind::Pam);
        mixed.set_fault_plan(mixed_fault_plan()).unwrap();
        mixed.run(SimTime::from_micros(4_500));
        mixed.run_sharded(SimTime::from_millis(13), 3);
        mixed.run(SimTime::from_millis(30));
        assert_eq!(report_json(&sequential), report_json(&mixed));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Random mini-fleets: any mix of rates, seeds, server counts and
            /// shard counts replays byte-identically under sharding, with
            /// identical per-server submission sequences. Ignored on the
            /// default path (each case simulates two full fleets); CI's
            /// proptest job runs it deep in release.
            #[test]
            #[ignore = "randomised deep suite; CI proptest job runs it in release"]
            fn random_fleets_are_byte_identical_under_sharding(
                servers in 2usize..5,
                shards in 2usize..7,
                seed in 0u64..1_000,
                hot_tenths in 30u64..40,
                horizon_ms in 4u64..9,
            ) {
                let build = || {
                    let mut specs = Vec::new();
                    for index in 0..servers {
                        let rate = if index == 0 {
                            Gbps::new(hot_tenths as f64 / 10.0)
                        } else {
                            Gbps::new(0.4 + index as f64 * 0.2)
                        };
                        specs.push(spec_with(
                            TrafficSchedule::constant(rate, SimDuration::from_millis(horizon_ms)),
                            seed + index as u64,
                        ));
                    }
                    Fleet::new(specs, FleetConfig::with_strategy(StrategyKind::Pam)).unwrap()
                };
                let until = SimTime::from_millis(horizon_ms);
                let mut sequential = build();
                sequential.run(until);
                let mut sharded = build();
                sharded.run_sharded(until, shards);
                prop_assert_eq!(report_json(&sequential), report_json(&sharded));
                prop_assert_eq!(sequential.events_scheduled(), sharded.events_scheduled());
                for (a, b) in sequential.servers.iter().zip(&sharded.servers) {
                    prop_assert_eq!(a.submissions(), b.submissions());
                }
            }
        }
    }
}
