//! Flow-sticky cross-server re-steering.
//!
//! When a server's overload cannot be relieved locally (the strategy returns
//! [`pam_core::Decision::ScaleOut`]), the fleet controller shifts a fraction
//! of that server's *flows* to a recipient server. The split is by flow-hash
//! threshold: a flow is spilled iff `hash(flow) < fraction · 2⁶⁴`. Two
//! properties follow:
//!
//! * **stickiness** — a given flow always lands on the same server while the
//!   fraction is unchanged, so per-flow vNF state never ping-pongs;
//! * **monotonicity** — growing the fraction only *adds* spilled flows and
//!   shrinking it only *returns* them, so each adjustment re-steers the
//!   minimal set of flows (the same nesting trick consistent hashing uses).

use pam_types::{FlowId, ServerId};
use serde::{Deserialize, Serialize};

/// One active spill: `fraction` of the home server's flows go to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spill {
    /// The recipient server.
    pub to: ServerId,
    /// Fraction of the home server's flows re-steered, in `[0, 1]`.
    pub fraction: f64,
}

/// Counters of what the steering layer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteeringStats {
    /// Packets sent to a server other than their home server.
    pub resteered_packets: u64,
    /// Packets that stayed on their home server.
    pub local_packets: u64,
}

/// The fleet's flow-steering table: at most one active spill per home server.
#[derive(Debug, Clone)]
pub struct SteeringTable {
    spills: Vec<Option<Spill>>,
    stats: SteeringStats,
}

impl SteeringTable {
    /// A table for `servers` servers with no active spill.
    pub fn new(servers: usize) -> Self {
        SteeringTable {
            spills: vec![None; servers],
            stats: SteeringStats::default(),
        }
    }

    /// The active spill of `home`, if any.
    pub fn spill_of(&self, home: ServerId) -> Option<Spill> {
        self.spills[home.index()]
    }

    /// The fraction of `home`'s flows currently re-steered (zero when none).
    pub fn fraction_of(&self, home: ServerId) -> f64 {
        self.spill_of(home).map_or(0.0, |s| s.fraction)
    }

    /// True when `server` is the recipient of any active spill.
    pub fn is_recipient(&self, server: ServerId) -> bool {
        self.spills
            .iter()
            .any(|s| s.is_some_and(|s| s.to == server))
    }

    /// Raises `home`'s spill towards `to` by `step`, capped at `max`.
    /// Returns the new fraction. An existing spill keeps its recipient (the
    /// ladder never splits one server's overflow across two recipients).
    pub fn scale_out(&mut self, home: ServerId, to: ServerId, step: f64, max: f64) -> f64 {
        let slot = &mut self.spills[home.index()];
        let next = match slot {
            Some(spill) => Spill {
                to: spill.to,
                fraction: (spill.fraction + step).min(max),
            },
            None => Spill {
                to,
                fraction: step.min(max),
            },
        };
        *slot = Some(next);
        next.fraction
    }

    /// Lowers `home`'s spill by `step`, removing it at zero. Returns the new
    /// fraction.
    pub fn scale_in(&mut self, home: ServerId, step: f64) -> f64 {
        let slot = &mut self.spills[home.index()];
        match slot {
            Some(spill) => {
                let next = spill.fraction - step;
                if next <= f64::EPSILON {
                    *slot = None;
                    0.0
                } else {
                    spill.fraction = next;
                    next
                }
            }
            None => 0.0,
        }
    }

    /// Removes `home`'s spill entirely (its flows route home again).
    /// Returns the fraction that was active. Fault injection uses this when
    /// a spill's *recipient* crashes: black-holing re-steered flows on a
    /// dead recipient is strictly worse than serving them at the overloaded
    /// home.
    pub fn clear_spill(&mut self, home: ServerId) -> f64 {
        self.spills[home.index()].take().map_or(0.0, |s| s.fraction)
    }

    /// Fails `home`'s *entire* flow population over to `to` (fraction 1.0),
    /// replacing any existing spill and bypassing the ladder's headroom and
    /// max-spill policy — fault injection uses this when `home` itself
    /// crashes, where the alternative is dropping every packet. The ladder's
    /// ordinary scale-in walks the flows back step by step once `home`
    /// recovers and its warm-up guard expires.
    pub fn force_spill(&mut self, home: ServerId, to: ServerId) {
        debug_assert_ne!(home, to, "a server cannot fail over to itself");
        self.spills[home.index()] = Some(Spill { to, fraction: 1.0 });
    }

    /// Where a packet of `home`'s ingress traffic is served, decided by the
    /// flow-hash threshold: the home server itself or the spill recipient.
    /// Pure — no counters move — so the sharded runner's worker threads can
    /// resolve targets against the table frozen for the current window.
    pub fn target_of(&self, home: ServerId, flow: FlowId) -> ServerId {
        match self.spills[home.index()] {
            Some(spill) if flow_unit(flow) < spill.fraction => spill.to,
            _ => home,
        }
    }

    /// Routes one packet of `home`'s ingress traffic, tallying into the
    /// table's own counters.
    pub fn route(&mut self, home: ServerId, flow: FlowId) -> ServerId {
        let target = self.target_of(home, flow);
        tally(&mut self.stats, home, target);
        target
    }

    /// Routes like [`SteeringTable::route`] but tallies into `stats`, so a
    /// shard worker can count against a group-local scratch and merge later.
    pub fn route_into(&self, home: ServerId, flow: FlowId, stats: &mut SteeringStats) -> ServerId {
        let target = self.target_of(home, flow);
        tally(stats, home, target);
        target
    }

    /// Folds counters tallied elsewhere (a shard worker's group-local
    /// scratch) into the table's totals. Counter sums are order-independent,
    /// so the merged totals match a sequential run's exactly.
    pub fn absorb(&mut self, stats: SteeringStats) {
        self.stats.resteered_packets += stats.resteered_packets;
        self.stats.local_packets += stats.local_packets;
    }

    /// Accumulated routing counters.
    pub fn stats(&self) -> SteeringStats {
        self.stats
    }
}

fn tally(stats: &mut SteeringStats, home: ServerId, target: ServerId) {
    if target == home {
        stats.local_packets += 1;
    } else {
        stats.resteered_packets += 1;
    }
}

/// Maps a flow id to a uniform point in `[0, 1)` via splitmix64, so spill
/// thresholds cut the flow population proportionally even for sequential ids.
fn flow_unit(flow: FlowId) -> f64 {
    let mut z = flow.raw().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: ServerId = ServerId::new(0);
    const S1: ServerId = ServerId::new(1);
    const S2: ServerId = ServerId::new(2);

    #[test]
    fn no_spill_routes_everything_home() {
        let mut table = SteeringTable::new(3);
        for raw in 0..100 {
            assert_eq!(table.route(S0, FlowId::new(raw)), S0);
        }
        assert_eq!(table.stats().local_packets, 100);
        assert_eq!(table.stats().resteered_packets, 0);
        assert_eq!(table.fraction_of(S0), 0.0);
        assert!(!table.is_recipient(S1));
    }

    #[test]
    fn spill_fraction_splits_the_flow_population_proportionally() {
        let mut table = SteeringTable::new(2);
        table.scale_out(S0, S1, 0.3, 1.0);
        let spilled = (0..10_000)
            .filter(|raw| table.route(S0, FlowId::new(*raw)) == S1)
            .count();
        // splitmix64 is uniform: expect ~30% ± a small tolerance.
        assert!((2_700..=3_300).contains(&spilled), "spilled {spilled}");
        assert!(table.is_recipient(S1));
    }

    #[test]
    fn growing_the_fraction_only_adds_flows() {
        let mut a = SteeringTable::new(2);
        let mut b = SteeringTable::new(2);
        a.scale_out(S0, S1, 0.2, 1.0);
        b.scale_out(S0, S1, 0.5, 1.0);
        for raw in 0..5_000 {
            let flow = FlowId::new(raw);
            if a.route(S0, flow) == S1 {
                assert_eq!(b.route(S0, flow), S1, "flow {raw} fell back home");
            } else {
                b.route(S0, flow);
            }
        }
    }

    #[test]
    fn scale_out_keeps_the_existing_recipient_and_caps_at_max() {
        let mut table = SteeringTable::new(3);
        assert_eq!(table.scale_out(S0, S1, 0.25, 0.6), 0.25);
        // A later scale-out naming another recipient still tops up S1.
        assert_eq!(table.scale_out(S0, S2, 0.25, 0.6), 0.5);
        assert_eq!(table.spill_of(S0).unwrap().to, S1);
        assert_eq!(table.scale_out(S0, S2, 0.25, 0.6), 0.6);
    }

    #[test]
    fn scale_in_steps_down_and_removes_at_zero() {
        let mut table = SteeringTable::new(2);
        table.scale_out(S0, S1, 0.4, 1.0);
        assert!((table.scale_in(S0, 0.25) - 0.15).abs() < 1e-12);
        assert_eq!(table.scale_in(S0, 0.25), 0.0);
        assert_eq!(table.spill_of(S0), None);
        assert_eq!(table.scale_in(S0, 0.25), 0.0);
    }

    #[test]
    fn clear_and_force_spill_drive_the_failover_arcs() {
        let mut table = SteeringTable::new(3);
        table.scale_out(S0, S1, 0.4, 1.0);
        assert!((table.clear_spill(S0) - 0.4).abs() < 1e-12);
        assert_eq!(table.spill_of(S0), None);
        assert_eq!(table.clear_spill(S0), 0.0, "clearing twice is a no-op");

        table.force_spill(S0, S2);
        assert_eq!(table.fraction_of(S0), 1.0);
        // Every single flow fails over, none stays on the dead home.
        for raw in 0..1_000 {
            assert_eq!(table.route(S0, FlowId::new(raw)), S2);
        }
        // Scale-in walks the failed-over flows back step by step.
        assert!((table.scale_in(S0, 0.25) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn flow_unit_is_uniform_enough() {
        let mean = (0..10_000)
            .map(|raw| flow_unit(FlowId::new(raw)))
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
