//! One server of the fleet.
//!
//! A [`FleetServer`] bundles what PR 1's single-server pipeline kept at the
//! top level: a packet-level [`ChainRuntime`] (its own SmartNIC, CPU and
//! PCIe link), the home traffic arriving at that server, the per-server
//! [`Orchestrator`] running the local PAM control loop, and the
//! sliding-window estimator the fleet controller feeds its decisions from.

use pam_core::Placement;
use pam_nf::{Packet, ServiceChainSpec};
use pam_orchestrator::{Orchestrator, OrchestratorConfig};
use pam_runtime::{ChainRuntime, RuntimeConfig};
use pam_traffic::{TraceConfig, TraceSynthesizer};
use pam_types::{Gbps, Result, ServerId, SimDuration, SimTime};

use crate::estimator::LoadEstimator;

/// Everything needed to stand up one server of the fleet.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// The service chain deployed on the server.
    pub chain: ServiceChainSpec,
    /// The initial NIC/CPU placement.
    pub placement: Placement,
    /// Device, link and migration-cost parameters.
    pub runtime: RuntimeConfig,
    /// The server's home traffic (before any cross-server re-steering).
    pub trace: TraceConfig,
}

/// One server: runtime, home traffic, local control loop and load window.
pub struct FleetServer {
    id: ServerId,
    runtime: ChainRuntime,
    trace: TraceSynthesizer,
    pending: Option<(SimTime, Packet)>,
    orchestrator: Orchestrator,
    estimator: LoadEstimator,
    bytes_since_tick: u64,
    /// Home packets sequenced into the current synchronisation window by the
    /// sharded runner, waiting for their group's worker to submit them.
    parked: std::collections::VecDeque<Packet>,
    /// Test-only: the `(time, flow)` sequence of every packet submitted to
    /// this server's runtime, for pinning that the sharded runner replays the
    /// sequential per-server submission order exactly.
    #[cfg(test)]
    submissions: Vec<(SimTime, u64)>,
}

impl std::fmt::Debug for FleetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetServer")
            .field("id", &self.id)
            .field("orchestrator", &self.orchestrator)
            .field("window_samples", &self.estimator.samples())
            .finish()
    }
}

impl FleetServer {
    /// Builds the server from its spec, control-loop parameters and the
    /// load estimator the fleet controller will feed (see
    /// [`LoadEstimator::new`]).
    pub fn new(
        id: ServerId,
        spec: ServerSpec,
        orchestrator: OrchestratorConfig,
        estimator: LoadEstimator,
    ) -> Result<Self> {
        let runtime = ChainRuntime::new(spec.chain, &spec.placement, spec.runtime)?;
        Ok(FleetServer {
            id,
            runtime,
            trace: TraceSynthesizer::new(spec.trace),
            pending: None,
            orchestrator: Orchestrator::new(orchestrator),
            estimator,
            bytes_since_tick: 0,
            parked: std::collections::VecDeque::new(),
            #[cfg(test)]
            submissions: Vec::new(),
        })
    }

    /// The server's fleet id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The server's data plane.
    pub fn runtime(&self) -> &ChainRuntime {
        &self.runtime
    }

    /// Mutable access to the data plane (packet submission, draining).
    pub fn runtime_mut(&mut self) -> &mut ChainRuntime {
        &mut self.runtime
    }

    /// The server's local control loop.
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orchestrator
    }

    /// Mutable access to the local control loop.
    pub fn orchestrator_mut(&mut self) -> &mut Orchestrator {
        &mut self.orchestrator
    }

    /// Read-only access to the server's load estimator (kind, error bounds,
    /// resident bytes, heavy hitters). All mutation goes through
    /// [`FleetServer::record_load`] and [`FleetServer::note_arrival`] — the
    /// concrete estimator type is no longer part of the server's API.
    pub fn estimator(&self) -> &LoadEstimator {
        &self.estimator
    }

    /// Records the offered load measured over the tick ending at `now` into
    /// the estimator's sliding window (sealing the tick's per-flow slot).
    pub fn record_load(&mut self, now: SimTime, offered: Gbps) {
        self.estimator.record(now, offered);
    }

    /// The estimator's windowed mean load — what the fleet ladder's
    /// migration and scale-out decisions consume.
    pub fn windowed_load(&self) -> Gbps {
        self.estimator.windowed()
    }

    /// The estimator's windowed peak load — what holds scale-in back until
    /// the whole window has receded.
    pub fn peak_load(&self) -> Gbps {
        self.estimator.peak()
    }

    /// The control loop and data plane together, split-borrowed so the
    /// orchestrator can drive its own runtime.
    pub fn control_parts(&mut self) -> (&mut Orchestrator, &mut ChainRuntime) {
        (&mut self.orchestrator, &mut self.runtime)
    }

    /// Accounts one packet arriving at this server (home or re-steered):
    /// the tick byte counter for offered load, and the estimator's per-flow
    /// window for heavy-hitter queries.
    pub fn note_arrival(&mut self, flow: u64, size: pam_types::ByteSize) {
        self.bytes_since_tick += size.as_bytes();
        self.estimator.record_arrival(flow, size.as_bytes());
    }

    /// The load that actually arrived since the previous tick, measured over
    /// `interval`. Resets the per-tick byte counter.
    pub fn take_tick_load(&mut self, interval: SimDuration) -> pam_types::Gbps {
        let bytes = std::mem::take(&mut self.bytes_since_tick);
        let secs = interval.as_secs_f64();
        if secs <= 0.0 {
            return pam_types::Gbps::ZERO;
        }
        pam_types::Gbps::from_bytes_per_sec(bytes as f64 / secs)
    }

    /// The send time of the server's next home packet, if any. Pulls the
    /// packet out of the trace and parks it until [`FleetServer::take_pending`].
    pub fn next_arrival(&mut self) -> Option<SimTime> {
        if self.pending.is_none() {
            self.pending = self.trace.next_packet();
        }
        self.pending.as_ref().map(|(t, _)| *t)
    }

    /// Takes the parked home packet (call after its arrival event fired).
    pub fn take_pending(&mut self) -> Option<(SimTime, Packet)> {
        self.pending.take()
    }

    /// Parks one due home packet for the sharded runner's current window.
    /// The sequencer calls this in global `(time, seq)` pop order, so the
    /// FIFO preserves that order within the window.
    pub fn park(&mut self, packet: Packet) {
        self.parked.push_back(packet);
    }

    /// Takes the oldest packet parked by [`FleetServer::park`].
    pub fn take_parked(&mut self) -> Option<Packet> {
        self.parked.pop_front()
    }

    /// Test-only: records one packet submission to this server's runtime.
    #[cfg(test)]
    pub(crate) fn log_submission(&mut self, at: SimTime, flow: u64) {
        self.submissions.push((at, flow));
    }

    /// Test-only: the recorded `(time, flow)` submission sequence.
    #[cfg(test)]
    pub(crate) fn submissions(&self) -> &[(SimTime, u64)] {
        &self.submissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_traffic::{ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TrafficSchedule};
    use pam_types::{ByteSize, Gbps};

    fn spec() -> ServerSpec {
        ServerSpec {
            chain: ServiceChainSpec::figure1(),
            placement: Placement::figure1_initial(),
            runtime: RuntimeConfig::evaluation_default(),
            trace: TraceConfig {
                sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
                flows: FlowGeneratorConfig::default(),
                arrival: ArrivalProcess::Cbr,
                schedule: TrafficSchedule::constant(Gbps::new(1.0), SimDuration::from_millis(2)),
                seed: 7,
            },
        }
    }

    #[test]
    fn arrivals_are_parked_until_taken() {
        let estimator = LoadEstimator::new(
            &crate::estimator::EstimatorConfig::default(),
            SimDuration::from_micros(500),
        );
        let mut server = FleetServer::new(
            ServerId::new(0),
            spec(),
            OrchestratorConfig::default(),
            estimator,
        )
        .unwrap();
        let first = server.next_arrival().expect("trace has packets");
        // Peeking again must not consume a second packet.
        assert_eq!(server.next_arrival(), Some(first));
        let (at, packet) = server.take_pending().expect("parked packet");
        assert_eq!(at, first);
        assert!(packet.size().as_bytes() > 0);
        assert_ne!(server.next_arrival(), None);
        assert_eq!(server.id(), ServerId::new(0));
    }
}
