//! Machine-readable fleet run reports.
//!
//! Everything here derives `Serialize`/`Deserialize` and holds only scalars
//! and `Vec`s (never maps), so `serde_json::to_string` of the same run is
//! byte-identical across replays — the property both the determinism tests
//! and the CI perf gate rely on.

use serde::{Deserialize, Serialize};

/// Per-server outcome of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerReport {
    /// The server's fleet index.
    pub server: u64,
    /// Packets injected at this server (home and re-steered).
    pub injected: u64,
    /// Packets delivered end to end.
    pub delivered: u64,
    /// Packets dropped by device overload.
    pub drops_overload: u64,
    /// Packets dropped by vNF policy verdicts.
    pub drops_policy: u64,
    /// Packets dropped during migration blackouts.
    pub drops_migration: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: f64,
    /// Mean end-to-end latency, microseconds.
    pub mean_us: f64,
    /// Delivered throughput over the run, Gbps.
    pub throughput_gbps: f64,
    /// Live migrations executed on this server.
    pub migrations: u64,
    /// Total migration-blackout time on this server, microseconds.
    pub blackout_us: f64,
    /// Fraction of this server's flows spilled elsewhere at run end.
    pub spill_fraction: f64,
}

/// Fleet-wide aggregates (latency quantiles merged across all servers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetTotals {
    /// Packets injected fleet-wide.
    pub injected: u64,
    /// Packets delivered fleet-wide.
    pub delivered: u64,
    /// Overload drops fleet-wide.
    pub drops_overload: u64,
    /// Policy drops fleet-wide.
    pub drops_policy: u64,
    /// Migration-blackout drops fleet-wide.
    pub drops_migration: u64,
    /// Median latency over every delivered packet, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency over every delivered packet, microseconds.
    pub p99_us: f64,
    /// Mean latency over every delivered packet, microseconds.
    pub mean_us: f64,
    /// Live migrations executed fleet-wide.
    pub migrations: u64,
    /// Scale-out actions (spill fraction raised).
    pub scale_outs: u64,
    /// Scale-in actions (spill fraction lowered).
    pub scale_ins: u64,
    /// Scale-outs refused because no recipient had headroom.
    pub scale_out_blocked: u64,
    /// Total migration-blackout time fleet-wide, microseconds.
    pub blackout_us: f64,
    /// Packets sent to a server other than their home server.
    pub resteered_packets: u64,
    /// Control ticks the fleet controller ran.
    pub control_steps: u64,
    /// Per-flow state entries handed to scale-out recipients.
    pub handoff_flows: u64,
    /// Bytes of state shipped over the inter-server link.
    pub handoff_bytes: u64,
    /// Total inter-server state-transfer time (non-blocking), microseconds.
    pub handoff_us: f64,
}

/// The full report of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-server outcomes, in server-id order.
    pub servers: Vec<ServerReport>,
    /// Fleet-wide aggregates.
    pub totals: FleetTotals,
}

impl FleetReport {
    /// The fleet-wide delivery ratio (`1.0` when nothing was offered).
    pub fn delivery_ratio(&self) -> f64 {
        if self.totals.injected == 0 {
            1.0
        } else {
            self.totals.delivered as f64 / self.totals.injected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = FleetReport {
            servers: vec![ServerReport {
                server: 0,
                injected: 100,
                delivered: 90,
                drops_overload: 10,
                drops_policy: 0,
                drops_migration: 0,
                p50_us: 12.5,
                p99_us: 80.0,
                mean_us: 20.0,
                throughput_gbps: 1.5,
                migrations: 1,
                blackout_us: 700.0,
                spill_fraction: 0.25,
            }],
            totals: FleetTotals {
                injected: 100,
                delivered: 90,
                drops_overload: 10,
                p50_us: 12.5,
                p99_us: 80.0,
                mean_us: 20.0,
                migrations: 1,
                scale_outs: 1,
                blackout_us: 700.0,
                resteered_packets: 20,
                control_steps: 8,
                ..FleetTotals::default()
            },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!((report.delivery_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_unit_delivery_ratio() {
        let report = FleetReport {
            servers: vec![],
            totals: FleetTotals::default(),
        };
        assert_eq!(report.delivery_ratio(), 1.0);
    }
}
