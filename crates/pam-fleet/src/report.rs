//! Machine-readable fleet run reports.
//!
//! Everything here holds only scalars and `Vec`s (never maps), so
//! `serde_json::to_string` of the same run is byte-identical across replays
//! — the property both the determinism tests and the CI perf gate rely on.
//!
//! `Serialize` is derived (fields are emitted in declaration order; new
//! fields are appended at the end), but `Deserialize` for [`ServerReport`]
//! and [`FleetTotals`] is hand-written: the vendored serde derive has no
//! `#[serde(default)]`, and the CI perf gate must keep parsing baselines
//! committed before the fault-injection fields existed. Fields added since
//! default to zero when absent.

use serde::value::{Map, Value};
use serde::{Deserialize, Error, Serialize};

/// Extracts a required field, failing with the field name when absent.
fn required<T: Deserialize>(map: &Map, key: &str) -> Result<T, Error> {
    match map.get(key) {
        Some(value) => T::from_value(value),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

/// Extracts a field added after the first committed baselines, defaulting
/// when absent so old reports keep parsing.
fn defaulted<T: Deserialize + Default>(map: &Map, key: &str) -> Result<T, Error> {
    match map.get(key) {
        Some(value) => T::from_value(value),
        None => Ok(T::default()),
    }
}

/// Per-server outcome of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServerReport {
    /// The server's fleet index.
    pub server: u64,
    /// Packets injected at this server (home and re-steered).
    pub injected: u64,
    /// Packets delivered end to end.
    pub delivered: u64,
    /// Packets dropped by device overload.
    pub drops_overload: u64,
    /// Packets dropped by vNF policy verdicts.
    pub drops_policy: u64,
    /// Packets dropped during migration blackouts.
    pub drops_migration: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: f64,
    /// Mean end-to-end latency, microseconds.
    pub mean_us: f64,
    /// Delivered throughput over the run, Gbps.
    pub throughput_gbps: f64,
    /// Live migrations executed on this server.
    pub migrations: u64,
    /// Total migration-blackout time on this server, microseconds.
    pub blackout_us: f64,
    /// Fraction of this server's flows spilled elsewhere at run end.
    pub spill_fraction: f64,
    /// Migrations rolled back before handover on this server (includes
    /// fault-injected target crashes).
    pub aborted_migrations: u64,
    /// Times this server crashed under the fault plan.
    pub crashes: u64,
    /// Times this server recovered and re-admitted behind the warm-up guard.
    pub recoveries: u64,
}

impl Deserialize for ServerReport {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = match value {
            Value::Object(map) => map,
            _ => return Err(Error::custom("ServerReport must be an object")),
        };
        Ok(ServerReport {
            server: required(map, "server")?,
            injected: required(map, "injected")?,
            delivered: required(map, "delivered")?,
            drops_overload: required(map, "drops_overload")?,
            drops_policy: required(map, "drops_policy")?,
            drops_migration: required(map, "drops_migration")?,
            p50_us: required(map, "p50_us")?,
            p99_us: required(map, "p99_us")?,
            mean_us: required(map, "mean_us")?,
            throughput_gbps: required(map, "throughput_gbps")?,
            migrations: required(map, "migrations")?,
            blackout_us: required(map, "blackout_us")?,
            spill_fraction: required(map, "spill_fraction")?,
            aborted_migrations: defaulted(map, "aborted_migrations")?,
            crashes: defaulted(map, "crashes")?,
            recoveries: defaulted(map, "recoveries")?,
        })
    }
}

/// Fleet-wide aggregates (latency quantiles merged across all servers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FleetTotals {
    /// Packets injected fleet-wide.
    pub injected: u64,
    /// Packets delivered fleet-wide.
    pub delivered: u64,
    /// Overload drops fleet-wide.
    pub drops_overload: u64,
    /// Policy drops fleet-wide.
    pub drops_policy: u64,
    /// Migration-blackout drops fleet-wide.
    pub drops_migration: u64,
    /// Median latency over every delivered packet, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency over every delivered packet, microseconds.
    pub p99_us: f64,
    /// Mean latency over every delivered packet, microseconds.
    pub mean_us: f64,
    /// Live migrations executed fleet-wide.
    pub migrations: u64,
    /// Scale-out actions (spill fraction raised).
    pub scale_outs: u64,
    /// Scale-in actions (spill fraction lowered).
    pub scale_ins: u64,
    /// Scale-outs refused because no recipient had headroom.
    pub scale_out_blocked: u64,
    /// Total migration-blackout time fleet-wide, microseconds.
    pub blackout_us: f64,
    /// Packets sent to a server other than their home server.
    pub resteered_packets: u64,
    /// Control ticks the fleet controller ran.
    pub control_steps: u64,
    /// Per-flow state entries handed to scale-out recipients.
    pub handoff_flows: u64,
    /// Bytes of state shipped over the inter-server link.
    pub handoff_bytes: u64,
    /// Total inter-server state-transfer time (non-blocking), microseconds.
    pub handoff_us: f64,
    /// Migrations rolled back before handover fleet-wide (includes
    /// fault-injected target crashes).
    pub aborted_migrations: u64,
    /// Server crashes injected by the fault plan.
    pub server_crashes: u64,
    /// Server recoveries completed under the fault plan.
    pub server_recoveries: u64,
    /// Packets black-holed at a crashed server's ingress.
    pub fault_drops: u64,
}

impl Deserialize for FleetTotals {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = match value {
            Value::Object(map) => map,
            _ => return Err(Error::custom("FleetTotals must be an object")),
        };
        Ok(FleetTotals {
            injected: required(map, "injected")?,
            delivered: required(map, "delivered")?,
            drops_overload: required(map, "drops_overload")?,
            drops_policy: required(map, "drops_policy")?,
            drops_migration: required(map, "drops_migration")?,
            p50_us: required(map, "p50_us")?,
            p99_us: required(map, "p99_us")?,
            mean_us: required(map, "mean_us")?,
            migrations: required(map, "migrations")?,
            scale_outs: required(map, "scale_outs")?,
            scale_ins: required(map, "scale_ins")?,
            scale_out_blocked: required(map, "scale_out_blocked")?,
            blackout_us: required(map, "blackout_us")?,
            resteered_packets: required(map, "resteered_packets")?,
            control_steps: required(map, "control_steps")?,
            handoff_flows: required(map, "handoff_flows")?,
            handoff_bytes: required(map, "handoff_bytes")?,
            handoff_us: required(map, "handoff_us")?,
            aborted_migrations: defaulted(map, "aborted_migrations")?,
            server_crashes: defaulted(map, "server_crashes")?,
            server_recoveries: defaulted(map, "server_recoveries")?,
            fault_drops: defaulted(map, "fault_drops")?,
        })
    }
}

/// The full report of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-server outcomes, in server-id order.
    pub servers: Vec<ServerReport>,
    /// Fleet-wide aggregates.
    pub totals: FleetTotals,
}

impl FleetReport {
    /// The fleet-wide delivery ratio (`1.0` when nothing was offered).
    pub fn delivery_ratio(&self) -> f64 {
        if self.totals.injected == 0 {
            1.0
        } else {
            self.totals.delivered as f64 / self.totals.injected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_server() -> ServerReport {
        ServerReport {
            server: 0,
            injected: 100,
            delivered: 90,
            drops_overload: 10,
            drops_policy: 0,
            drops_migration: 0,
            p50_us: 12.5,
            p99_us: 80.0,
            mean_us: 20.0,
            throughput_gbps: 1.5,
            migrations: 1,
            blackout_us: 700.0,
            spill_fraction: 0.25,
            aborted_migrations: 2,
            crashes: 1,
            recoveries: 1,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = FleetReport {
            servers: vec![sample_server()],
            totals: FleetTotals {
                injected: 100,
                delivered: 90,
                drops_overload: 10,
                p50_us: 12.5,
                p99_us: 80.0,
                mean_us: 20.0,
                migrations: 1,
                scale_outs: 1,
                blackout_us: 700.0,
                resteered_packets: 20,
                control_steps: 8,
                aborted_migrations: 2,
                server_crashes: 1,
                server_recoveries: 1,
                fault_drops: 7,
                ..FleetTotals::default()
            },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!((report.delivery_ratio() - 0.9).abs() < 1e-12);
    }

    /// The serialised object with the named keys stripped — stands in for a
    /// report written before those fields existed.
    fn without(value: &Value, keys: &[&str]) -> Value {
        let Value::Object(map) = value else {
            panic!("reports serialise as objects");
        };
        Value::Object(Map::from_pairs(
            map.iter()
                .filter(|(k, _)| !keys.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        ))
    }

    #[test]
    fn pre_fault_reports_parse_with_zero_fault_counters() {
        // A report serialised before the fault-injection fields existed
        // (the committed CI baseline) must keep deserialising, with the new
        // counters defaulting to zero.
        let server = without(
            &sample_server().to_value(),
            &["aborted_migrations", "crashes", "recoveries"],
        );
        let parsed = ServerReport::from_value(&server).unwrap();
        assert_eq!(parsed.aborted_migrations, 0);
        assert_eq!(parsed.crashes, 0);
        assert_eq!(parsed.recoveries, 0);

        let totals = without(
            &FleetTotals::default().to_value(),
            &[
                "aborted_migrations",
                "server_crashes",
                "server_recoveries",
                "fault_drops",
            ],
        );
        let parsed = FleetTotals::from_value(&totals).unwrap();
        assert_eq!(parsed.server_crashes, 0);
        assert_eq!(parsed.fault_drops, 0);

        // A *missing* pre-existing field is still an error.
        let broken = without(&server, &["injected"]);
        assert!(ServerReport::from_value(&broken).is_err());
    }

    #[test]
    fn empty_report_has_unit_delivery_ratio() {
        let report = FleetReport {
            servers: vec![],
            totals: FleetTotals::default(),
        };
        assert_eq!(report.delivery_ratio(), 1.0);
    }
}
