//! Memento-style sliding-window heavy-hitter sketch.
//!
//! The fleet's exact estimator keeps one windowed byte counter per flow —
//! O(distinct flows) memory, which at the north star's "millions of users"
//! is the cache and memory bottleneck long before the data plane is. This
//! module replaces that table with a **count-min sketch with aging** in the
//! style of Memento (arxiv 1810.02899): the window is split into
//! tick-aligned *slots*, each slot owns a small count-min matrix, and a slot
//! is recycled (zeroed and restamped) when the window slides past it. A
//! windowed per-flow estimate is the classic count-min read over the summed
//! live slots, so the memory is `slots x depth x width` counters —
//! independent of the flow count.
//!
//! # Error bounds
//!
//! For a window holding `W` total bytes, a `SlidingSketch::estimate` of a
//! flow's windowed bytes `t` satisfies the standard count-min guarantee:
//!
//! * **never an undercount**: `estimate >= t`, always (counters only add);
//! * **bounded overcount**: `estimate <= t + eps * W` with probability at
//!   least `1 - delta`, where `eps = e / width` and `delta = e^-depth`.
//!
//! The defaults (`width = 256`, `depth = 4`) give `eps ~ 1.1%` of the window
//! bytes and `delta ~ 1.8%` in ~32 KiB per server — against the exact
//! table's megabytes at a 100k-flow flash crowd (see the `--estimators`
//! ablation of `fleet_bench`).
//!
//! Every row hashes with a fixed odd multiplier derived from the row index
//! (splitmix64), so two runs of the same trace produce bit-identical
//! counters — the sketch sits inside the byte-identical determinism wall
//! like everything else in this crate.

use pam_nf::fastmap::FlowMap;

/// How many candidate heavy hitters the sketch tracks per tracked `top_k`
/// slot. A larger factor survives more candidate churn between prunes at the
/// cost of a (still tiny) candidate table.
const CANDIDATE_FACTOR: usize = 4;

/// splitmix64 — the standard 64-bit mix used to derive per-row hash
/// multipliers from the row index. Pure function of its input: deterministic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One tick-aligned sub-sketch: a `depth x width` count-min matrix stamped
/// with the epoch (control tick) it accumulates.
#[derive(Debug, Clone)]
struct Slot {
    /// The epoch whose arrivals this slot holds.
    epoch: u64,
    /// Row-major `depth x width` byte counters.
    counts: Vec<u64>,
}

/// A sliding-window count-min sketch over `(flow, bytes)` arrivals.
///
/// Time is divided into *epochs* — one per control tick, advanced by
/// [`SlidingSketch::rotate`] — and the window covers the current epoch plus
/// the `slots - 1` preceding ones, mirroring the tick-sample ring of the
/// exact estimator (the current tick plus `window / interval` sealed ones).
#[derive(Debug, Clone)]
pub(crate) struct SlidingSketch {
    depth: usize,
    width: usize,
    /// `log2(width)`-derived shift for the multiplicative row hash.
    shift: u32,
    /// Per-row odd multipliers (fixed, derived from the row index).
    rows: Vec<u64>,
    /// The slot ring; `slots[epoch % slots.len()]` is the current epoch's.
    slots: Vec<Slot>,
    /// The current (in-progress) epoch.
    epoch: u64,
    /// Candidate heavy hitters: flow -> last epoch the flow was seen in.
    /// Bounded to `top_k * CANDIDATE_FACTOR` by deterministic pruning.
    candidates: FlowMap<u64>,
    /// Insertion-ordered candidate keys (the map itself has no ordered
    /// iteration; pruning and queries walk this list).
    candidate_keys: Vec<u64>,
    top_k: usize,
}

impl SlidingSketch {
    /// Builds a sketch of `slot_count` window slots, `depth` rows and
    /// (power-of-two rounded) `width` counters per row, tracking up to
    /// `top_k` heavy-hitter candidates.
    pub(crate) fn new(slot_count: usize, depth: usize, width: usize, top_k: usize) -> Self {
        let slot_count = slot_count.max(1);
        let depth = depth.max(1);
        let width = width.max(2).next_power_of_two();
        let top_k = top_k.max(1);
        SlidingSketch {
            depth,
            width,
            shift: 64 - width.trailing_zeros(),
            rows: (0..depth as u64).map(|row| splitmix64(row) | 1).collect(),
            slots: (0..slot_count)
                .map(|_| Slot {
                    // Stamp every slot as epoch 0's ring position so a fresh
                    // sketch reads all-zero without special cases; rotation
                    // restamps before reuse.
                    epoch: 0,
                    counts: vec![0; depth * width],
                })
                .collect(),
            epoch: 0,
            candidates: FlowMap::new(),
            candidate_keys: Vec::new(),
            top_k,
        }
    }

    /// The row-`row` counter index of `flow`.
    #[inline]
    fn index(&self, row: usize, flow: u64) -> usize {
        let hashed = (flow ^ self.rows[row]).wrapping_mul(self.rows[row]);
        row * self.width + (hashed >> self.shift) as usize
    }

    /// True when `epoch` is inside the current window.
    #[inline]
    fn live(&self, epoch: u64) -> bool {
        epoch + self.slots.len() as u64 > self.epoch
    }

    /// Seals the current epoch and recycles the slot that will host the new
    /// one. Call once per control tick, after the tick's arrivals.
    pub(crate) fn rotate(&mut self) {
        self.epoch += 1;
        let len = self.slots.len();
        let slot = &mut self.slots[(self.epoch % len as u64) as usize];
        slot.epoch = self.epoch;
        slot.counts.fill(0);
        if self.candidates.len() > self.top_k * CANDIDATE_FACTOR {
            self.prune();
        }
    }

    /// Records `bytes` for `flow` in the current epoch.
    pub(crate) fn record(&mut self, flow: u64, bytes: u64) {
        let current = (self.epoch % self.slots.len() as u64) as usize;
        // A slot is restamped on rotation, so between rotations the current
        // slot's stamp always matches; the epoch-0 ring needs the initial
        // stamp fixed up lazily (rotation has not touched it yet).
        self.slots[current].epoch = self.epoch;
        for row in 0..self.depth {
            let index = self.index(row, flow);
            self.slots[current].counts[index] += bytes;
        }
        if self.candidates.insert(flow, self.epoch).is_none() {
            self.candidate_keys.push(flow);
            // Keep the candidate table O(top_k) even when one tick floods in
            // more distinct flows than the rotation-time prune ever sees —
            // the whole point of the sketch is that a million-flow crowd
            // cannot grow per-flow state.
            if self.candidates.len() > self.top_k * CANDIDATE_FACTOR * 2 {
                self.prune();
            }
        }
    }

    /// The count-min estimate of `flow`'s bytes across the window: the
    /// row-wise minimum of the summed live slots.
    pub(crate) fn estimate(&self, flow: u64) -> u64 {
        let mut best = u64::MAX;
        for row in 0..self.depth {
            let index = self.index(row, flow);
            let mut sum = 0u64;
            for slot in &self.slots {
                if self.live(slot.epoch) {
                    sum += slot.counts[index];
                }
            }
            best = best.min(sum);
        }
        best
    }

    /// Deterministically shrinks the candidate set to the `top_k *
    /// CANDIDATE_FACTOR` flows with the largest windowed estimates (ties
    /// broken by lowest flow id), dropping flows that left the window.
    fn prune(&mut self) {
        let mut scored: Vec<(u64, u64, u64)> = Vec::with_capacity(self.candidate_keys.len());
        for &flow in &self.candidate_keys {
            let Some(&seen) = self.candidates.get(flow) else {
                continue;
            };
            if !self.live(seen) {
                continue;
            }
            scored.push((flow, self.estimate(flow), seen));
        }
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(self.top_k * CANDIDATE_FACTOR);
        self.candidates.clear();
        self.candidate_keys.clear();
        for (flow, _, seen) in scored {
            // Keep the original last-seen stamp: re-stamping with the prune
            // epoch would extend a quiet candidate's life by a full window.
            self.candidates.insert(flow, seen);
            self.candidate_keys.push(flow);
        }
    }

    /// The `k` heaviest candidate flows of the window as `(flow, estimated
    /// bytes)`, heaviest first, ties broken by lowest flow id. Flows whose
    /// windowed estimate is zero are omitted.
    pub(crate) fn heavy_hitters(&self, k: usize) -> Vec<(u64, u64)> {
        let mut scored: Vec<(u64, u64)> = Vec::with_capacity(self.candidate_keys.len());
        for &flow in &self.candidate_keys {
            let Some(&seen) = self.candidates.get(flow) else {
                continue;
            };
            if !self.live(seen) {
                continue;
            }
            let estimate = self.estimate(flow);
            if estimate > 0 {
                scored.push((flow, estimate));
            }
        }
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// The configured (epsilon, delta) error bound of a windowed estimate:
    /// `estimate <= truth + epsilon * window_bytes` with probability at
    /// least `1 - delta`.
    pub(crate) fn error_bound(&self) -> (f64, f64) {
        (
            std::f64::consts::E / self.width as f64,
            (-(self.depth as f64)).exp(),
        )
    }

    /// Bytes of memory resident in the sketch: the slot matrices plus the
    /// candidate table. Counter memory is fixed at construction —
    /// independent of how many distinct flows the window saw.
    pub(crate) fn resident_bytes(&self) -> usize {
        let counters = self.slots.len() * self.depth * self.width * std::mem::size_of::<u64>();
        let candidates = self.candidate_keys.capacity() * std::mem::size_of::<u64>()
            + self.candidates.len() * std::mem::size_of::<(u64, u64)>() * 2;
        counters + candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch() -> SlidingSketch {
        SlidingSketch::new(4, 4, 256, 8)
    }

    #[test]
    fn estimates_never_undercount() {
        let mut s = sketch();
        s.record(1, 1000);
        s.record(2, 500);
        s.record(1, 200);
        assert!(s.estimate(1) >= 1200);
        assert!(s.estimate(2) >= 500);
    }

    #[test]
    fn isolated_flows_estimate_exactly() {
        // With two flows in a 256-wide sketch a collision across all four
        // rows is (1/256)^4 — these fixed keys do not collide.
        let mut s = sketch();
        s.record(7, 300);
        s.record(9, 40);
        assert_eq!(s.estimate(7), 300);
        assert_eq!(s.estimate(9), 40);
        assert_eq!(s.estimate(12345), 0);
    }

    #[test]
    fn window_slides_old_epochs_out() {
        let mut s = sketch();
        s.record(1, 1000);
        // 4 slots: the epoch-0 bytes stay visible for rotations 1..3 and
        // vanish at the 4th.
        for _ in 0..3 {
            s.rotate();
            assert_eq!(s.estimate(1), 1000, "still inside the window");
        }
        s.rotate();
        assert_eq!(s.estimate(1), 0, "slid out of the window");
    }

    #[test]
    fn heavy_hitters_rank_by_windowed_bytes() {
        let mut s = sketch();
        s.record(10, 100);
        s.record(20, 900);
        s.rotate();
        s.record(30, 500);
        let hh = s.heavy_hitters(3);
        assert_eq!(hh[0], (20, 900));
        assert_eq!(hh[1], (30, 500));
        assert_eq!(hh[2], (10, 100));
        assert_eq!(s.heavy_hitters(1).len(), 1);
    }

    #[test]
    fn heavy_hitter_ties_break_by_lowest_flow_id() {
        let mut s = sketch();
        s.record(5, 100);
        s.record(3, 100);
        let hh = s.heavy_hitters(2);
        assert_eq!(hh, vec![(3, 100), (5, 100)]);
    }

    #[test]
    fn pruning_keeps_the_heavy_candidates() {
        let mut s = SlidingSketch::new(4, 4, 256, 2);
        // 2 * CANDIDATE_FACTOR = 8 candidate cap; insert many light flows
        // and two heavy ones, then rotate to trigger the prune.
        for flow in 0..64 {
            s.record(flow, 1);
        }
        s.record(100, 10_000);
        s.record(101, 9_000);
        s.rotate();
        let hh = s.heavy_hitters(2);
        assert_eq!(hh[0].0, 100);
        assert_eq!(hh[1].0, 101);
    }

    #[test]
    fn error_bound_matches_the_dimensions() {
        let s = sketch();
        let (eps, delta) = s.error_bound();
        assert!((eps - std::f64::consts::E / 256.0).abs() < 1e-12);
        assert!((delta - (-4.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn resident_bytes_are_flow_count_independent() {
        let mut s = sketch();
        let empty = s.resident_bytes();
        assert!(empty >= 4 * 4 * 256 * 8, "the slot matrices dominate");
        for flow in 0..10_000u64 {
            s.record(flow, 1);
            if flow % 100 == 0 {
                s.rotate();
            }
        }
        // Candidate pruning bounds the only flow-dependent part.
        assert!(s.resident_bytes() < empty + 64 * 1024);
    }

    #[test]
    fn width_rounds_up_to_a_power_of_two() {
        let s = SlidingSketch::new(4, 2, 300, 4);
        assert_eq!(s.width, 512);
        assert_eq!(s.rows.len(), 2);
        assert!(s.rows.iter().all(|m| m % 2 == 1), "multipliers stay odd");
    }

    #[test]
    fn two_identical_streams_produce_identical_sketches() {
        let mut a = sketch();
        let mut b = sketch();
        for flow in 0..500u64 {
            a.record(flow * 31, flow + 1);
            b.record(flow * 31, flow + 1);
            if flow % 50 == 0 {
                a.rotate();
                b.rotate();
            }
        }
        for flow in 0..500u64 {
            assert_eq!(a.estimate(flow * 31), b.estimate(flow * 31));
        }
        assert_eq!(a.heavy_hitters(8), b.heavy_hitters(8));
    }
}
