//! Node-health tracking for fault injection.
//!
//! [`NodeHealth`] is the fleet controller's view of which servers are up.
//! Fault events (a [`pam_sim::FaultPlan`] delivered through the fleet's
//! event queue) move servers between three states:
//!
//! * **Up** — serving, eligible for ladder decisions and as a spill
//!   recipient;
//! * **Down** — crashed: its ingress black-holes (packets routed to it are
//!   counted as fault drops, never submitted), its steering entries are
//!   drained to survivors, and the ladder skips it entirely;
//! * **Warming** — recovered but inside the warm-up guard: it serves
//!   traffic again, but the ladder neither acts *for* it nor picks it as a
//!   recipient until the guard expires, so a freshly re-admitted server is
//!   not immediately re-loaded while its caches and windows are cold.
//!
//! Everything here is plain indexed state mutated only at sequenced fault
//! and control-tick events, so sharded runs observe exactly the sequential
//! health history (fault events are window barriers in
//! [`crate::Fleet::run_sharded`]).

use pam_types::{ServerId, SimDuration, SimTime};

/// The default warm-up guard after a recovery: long enough to cover a few
/// control ticks at the default 1 ms cadence.
pub const DEFAULT_WARMUP: SimDuration = SimDuration::from_millis(2);

/// One server's health state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Serving and fully eligible.
    Up,
    /// Crashed: ingress black-holed, ladder skips it.
    Down,
    /// Recovered at some instant; eligible again once `until` has passed.
    Warming {
        /// End of the warm-up guard.
        until: SimTime,
    },
}

/// Per-server liveness, with crash/recovery counters for the fleet report.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    states: Vec<NodeState>,
    crashes: Vec<u64>,
    recoveries: Vec<u64>,
    warmup: SimDuration,
}

impl NodeHealth {
    /// All `servers` up, with the given warm-up guard.
    pub fn new(servers: usize, warmup: SimDuration) -> Self {
        NodeHealth {
            states: vec![NodeState::Up; servers],
            crashes: vec![0; servers],
            recoveries: vec![0; servers],
            warmup,
        }
    }

    /// The configured warm-up guard.
    pub fn warmup(&self) -> SimDuration {
        self.warmup
    }

    /// Replaces the warm-up guard applied to *future* recoveries (servers
    /// already warming keep the deadline they were given).
    pub fn set_warmup(&mut self, warmup: SimDuration) {
        self.warmup = warmup;
    }

    /// True when `server` accepts traffic (up or warming — a warming server
    /// serves, it just is not eligible for ladder decisions yet).
    pub fn is_alive(&self, server: ServerId) -> bool {
        !matches!(self.states[server.index()], NodeState::Down)
    }

    /// True when the ladder may act for (or pick) `server` at `now`: alive
    /// and past any warm-up guard. Pure — a `Warming` state whose guard has
    /// expired simply behaves as `Up` from then on.
    pub fn eligible(&self, server: ServerId, now: SimTime) -> bool {
        match self.states[server.index()] {
            NodeState::Up => true,
            NodeState::Down => false,
            NodeState::Warming { until } => now >= until,
        }
    }

    /// Marks `server` crashed. Returns `true` if it was alive (a crash of an
    /// already-dead server is a no-op and does not count).
    pub fn crash(&mut self, server: ServerId) -> bool {
        if !self.is_alive(server) {
            return false;
        }
        self.states[server.index()] = NodeState::Down;
        self.crashes[server.index()] += 1;
        true
    }

    /// Re-admits `server` at `now` behind the warm-up guard. Returns `true`
    /// if it was down (recovering a live server is a no-op).
    pub fn recover(&mut self, server: ServerId, now: SimTime) -> bool {
        if self.is_alive(server) {
            return false;
        }
        self.states[server.index()] = NodeState::Warming {
            until: now + self.warmup,
        };
        self.recoveries[server.index()] += 1;
        true
    }

    /// Crashes `server` has suffered so far.
    pub fn crashes(&self, server: ServerId) -> u64 {
        self.crashes[server.index()]
    }

    /// Recoveries `server` has completed so far.
    pub fn recoveries(&self, server: ServerId) -> u64 {
        self.recoveries[server.index()]
    }

    /// Total crashes across the fleet.
    pub fn total_crashes(&self) -> u64 {
        self.crashes.iter().sum()
    }

    /// Total recoveries across the fleet.
    pub fn total_recoveries(&self) -> u64 {
        self.recoveries.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: ServerId = ServerId::new(0);
    const S1: ServerId = ServerId::new(1);

    #[test]
    fn crash_recover_cycle_counts_and_guards() {
        let mut health = NodeHealth::new(2, SimDuration::from_millis(1));
        assert!(health.is_alive(S0) && health.eligible(S0, SimTime::ZERO));

        assert!(health.crash(S0));
        assert!(!health.crash(S0), "double crash is a no-op");
        assert!(!health.is_alive(S0));
        assert!(!health.eligible(S0, SimTime::from_millis(10)));
        assert!(health.is_alive(S1), "other servers unaffected");
        assert_eq!(health.crashes(S0), 1);
        assert_eq!(health.total_crashes(), 1);

        let back = SimTime::from_millis(5);
        assert!(health.recover(S0, back));
        assert!(!health.recover(S0, back), "double recover is a no-op");
        assert!(health.is_alive(S0), "warming servers serve traffic");
        assert!(
            !health.eligible(S0, back),
            "the warm-up guard holds the ladder back"
        );
        assert!(health.eligible(S0, back + health.warmup()));
        assert_eq!(health.recoveries(S0), 1);
        assert_eq!(health.total_recoveries(), 1);
        assert_eq!(health.recoveries(S1), 0);
    }
}
