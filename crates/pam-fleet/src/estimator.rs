//! Load estimation behind one interface: exact per-flow accounting or a
//! sliding-window heavy-hitter sketch.
//!
//! The single-server orchestrator polls the *instantaneous* offered load,
//! which whipsaws under bursty traffic: one quiet poll interval during a
//! flash crowd and the controller believes the overload is gone. The fleet
//! controller instead feeds every decision from a [`LoadEstimator`]: a
//! window of tick-aligned load samples answering the windowed mean (used to
//! decide migrations and scale-out), the windowed peak (used to hold off
//! scale-in until the *whole* window has receded), and the window's top-k
//! heaviest flows.
//!
//! Two implementations sit behind the interface, selected by
//! [`EstimatorKind`]:
//!
//! * **`Exact`** — the historical estimator: a ring of tick samples plus an
//!   exact windowed byte counter per flow. Ground truth, O(distinct flows)
//!   memory — the committed `BENCH_baseline.json` is pinned to its
//!   decisions.
//! * **`Sketch`** — a Memento-style sliding count-min sketch (see
//!   [`crate::sketch`]): the same tick-sample ring for mean/peak (so the
//!   decision ladder sees identical windowed loads), but per-flow state
//!   collapses to `slots x depth x width` counters with a documented
//!   (epsilon, delta) overcount bound — O(1) in the flow count, which is
//!   what makes million-flow fleets feasible.
//!
//! The concrete types are private: the fleet records through
//! [`LoadEstimator::record`]/[`LoadEstimator::record_arrival`] and queries
//! through [`LoadEstimator::windowed`]/[`LoadEstimator::peak`]/
//! [`LoadEstimator::heavy_hitters`], so swapping the estimator never touches
//! a call site again.

use std::collections::VecDeque;

use pam_nf::fastmap::FlowMap;
use pam_types::{Gbps, SimDuration, SimTime};
use serde::value::{Map, Value};
use serde::{Deserialize, Error, Serialize};

use crate::sketch::SlidingSketch;

/// A timestamped offered-load sample.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Sample {
    at: SimTime,
    load: Gbps,
}

/// A sliding window over offered-load samples (the tick-sample ring both
/// estimator variants share for mean/peak).
///
/// Samples older than the configured window are evicted on every
/// [`record`](SlidingWindowEstimator::record), so the ring's memory is
/// bounded by `window / sample_interval`. The queries (`mean`, `peak`,
/// `latest`) do not evict — they reflect the window as of the most recent
/// sample, so record at the current time before querying.
#[derive(Debug, Clone)]
pub(crate) struct SlidingWindowEstimator {
    window: SimDuration,
    samples: VecDeque<Sample>,
}

impl SlidingWindowEstimator {
    /// Creates an estimator remembering samples for `window`.
    pub(crate) fn new(window: SimDuration) -> Self {
        SlidingWindowEstimator {
            window,
            samples: VecDeque::new(),
        }
    }

    /// The configured window length.
    pub(crate) fn window(&self) -> SimDuration {
        self.window
    }

    /// Records a load sample taken at `now` and evicts expired samples.
    ///
    /// Timestamps must not run backwards; a `now` earlier than the latest
    /// sample (possible when a resumed run re-records the boundary tick) is
    /// clamped to the latest sample's time, so the ring stays monotone and
    /// eviction can never resurrect an already-evicted sample. Debug builds
    /// additionally assert, to surface the caller's ordering bug.
    pub(crate) fn record(&mut self, now: SimTime, load: Gbps) {
        let now = match self.samples.back() {
            Some(last) if now < last.at => {
                debug_assert!(
                    now >= last.at,
                    "out-of-order estimator sample: {now:?} after {:?}",
                    last.at
                );
                last.at
            }
            _ => now,
        };
        self.samples.push_back(Sample { at: now, load });
        self.evict(now);
    }

    /// Number of samples currently inside the window.
    pub(crate) fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample is inside the window.
    pub(crate) fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The windowed mean load (zero with no samples).
    pub(crate) fn mean(&self) -> Gbps {
        if self.samples.is_empty() {
            return Gbps::ZERO;
        }
        let sum: f64 = self.samples.iter().map(|s| s.load.as_gbps()).sum();
        Gbps::new(sum / self.samples.len() as f64)
    }

    /// The windowed peak load (zero with no samples).
    pub(crate) fn peak(&self) -> Gbps {
        self.samples
            .iter()
            .map(|s| s.load)
            .fold(Gbps::ZERO, Gbps::max)
    }

    /// The most recent sample (zero with no samples).
    pub(crate) fn latest(&self) -> Gbps {
        self.samples.back().map(|s| s.load).unwrap_or(Gbps::ZERO)
    }

    /// Heap bytes held by the sample ring.
    fn resident_bytes(&self) -> usize {
        self.samples.capacity() * std::mem::size_of::<Sample>()
    }

    /// Drops samples that left the window as of `now`.
    fn evict(&mut self, now: SimTime) {
        while let Some(front) = self.samples.front() {
            if now.duration_since(front.at) > self.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }
}

/// Which load-estimator implementation a fleet runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimatorKind {
    /// Exact per-flow windowed accounting (the committed-baseline default).
    #[default]
    Exact,
    /// The sliding count-min heavy-hitter sketch (see [`crate::sketch`]).
    Sketch,
}

impl EstimatorKind {
    /// Both kinds, in ablation order.
    pub const ALL: [EstimatorKind; 2] = [EstimatorKind::Exact, EstimatorKind::Sketch];

    /// The machine-readable name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::Exact => "exact",
            EstimatorKind::Sketch => "sketch",
        }
    }

    /// Parses a CLI/report name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

// Hand-serialised as a plain string so configs stay greppable and the
// vendored serde derive (which has no `#[serde(default)]`) is not needed.
impl Serialize for EstimatorKind {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_owned())
    }
}

impl Deserialize for EstimatorKind {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(name) => EstimatorKind::from_name(name)
                .ok_or_else(|| Error::custom(format!("unknown estimator kind `{name}`"))),
            _ => Err(Error::custom("EstimatorKind must be a string")),
        }
    }
}

/// Configuration of a fleet's [`LoadEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Which implementation to run.
    pub kind: EstimatorKind,
    /// Length of the sliding window feeding every fleet decision.
    pub window: SimDuration,
    /// Count-min rows of the sketch variant (`delta = e^-depth`).
    pub depth: usize,
    /// Count-min counters per row of the sketch variant, rounded up to a
    /// power of two (`epsilon = e / width`).
    pub width: usize,
    /// How many heavy-hitter flows the sketch variant tracks.
    pub top_k: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            kind: EstimatorKind::Exact,
            window: SimDuration::from_millis(2),
            depth: 4,
            width: 256,
            top_k: 32,
        }
    }
}

impl EstimatorConfig {
    /// The default parameters of the given kind.
    pub fn of(kind: EstimatorKind) -> Self {
        EstimatorConfig {
            kind,
            ..Default::default()
        }
    }

    /// Overrides the window length.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }
}

// Every key is optional on the way in — a config written before the
// estimator knob existed (or one naming only `kind`) deserialises with the
// committed-baseline defaults, following the `link_model` pattern (the
// vendored serde derive has no `#[serde(default)]`).
impl Serialize for EstimatorConfig {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("kind".to_owned(), self.kind.to_value());
        map.insert("window".to_owned(), self.window.to_value());
        map.insert("depth".to_owned(), self.depth.to_value());
        map.insert("width".to_owned(), self.width.to_value());
        map.insert("top_k".to_owned(), self.top_k.to_value());
        Value::Object(map)
    }
}

impl Deserialize for EstimatorConfig {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = match value {
            Value::Object(map) => map,
            _ => return Err(Error::custom("EstimatorConfig must be an object")),
        };
        let defaults = EstimatorConfig::default();
        Ok(EstimatorConfig {
            kind: match map.get("kind") {
                Some(value) => EstimatorKind::from_value(value)?,
                None => defaults.kind,
            },
            window: match map.get("window") {
                Some(value) => SimDuration::from_value(value)?,
                None => defaults.window,
            },
            depth: match map.get("depth") {
                Some(value) => usize::from_value(value)?,
                None => defaults.depth,
            },
            width: match map.get("width") {
                Some(value) => usize::from_value(value)?,
                None => defaults.width,
            },
            top_k: match map.get("top_k") {
                Some(value) => usize::from_value(value)?,
                None => defaults.top_k,
            },
        })
    }
}

/// Exact windowed per-flow accounting: the ground-truth estimator.
///
/// Per flow, one byte counter per window slot (epoch-stamped, recycled in
/// place), so windowed queries are exact. Entries are never evicted — a
/// flow seen once costs its slot ring forever — which is precisely the
/// O(distinct flows) memory the sketch variant exists to replace, and what
/// [`LoadEstimator::resident_bytes`] makes visible in the ablation.
#[derive(Debug, Clone)]
struct ExactEstimator {
    ring: SlidingWindowEstimator,
    /// flow -> per-slot `(epoch, bytes)` counters, `slots` entries each.
    flows: FlowMap<Vec<(u64, u64)>>,
    /// Insertion-ordered flow keys (the map has no ordered iteration).
    keys: Vec<u64>,
    /// The current (in-progress) epoch; advanced once per control tick.
    epoch: u64,
    /// Window slots: the in-progress epoch plus `slots - 1` sealed ones.
    slots: usize,
}

impl ExactEstimator {
    fn new(window: SimDuration, slots: usize) -> Self {
        ExactEstimator {
            ring: SlidingWindowEstimator::new(window),
            flows: FlowMap::new(),
            keys: Vec::new(),
            epoch: 0,
            slots: slots.max(1),
        }
    }

    fn record_arrival(&mut self, flow: u64, bytes: u64) {
        let (epoch, slots) = (self.epoch, self.slots);
        if let Some(ring) = self.flows.get_mut(flow) {
            let slot = &mut ring[(epoch % slots as u64) as usize];
            if slot.0 != epoch {
                *slot = (epoch, 0);
            }
            slot.1 += bytes;
        } else {
            let mut ring = vec![(0u64, 0u64); slots];
            ring[(epoch % slots as u64) as usize] = (epoch, bytes);
            self.flows.insert(flow, ring);
            self.keys.push(flow);
        }
    }

    /// The flow's exact byte count across the window's live epochs.
    fn windowed_bytes(&self, flow: u64) -> u64 {
        let Some(ring) = self.flows.get(flow) else {
            return 0;
        };
        ring.iter()
            .filter(|(epoch, _)| epoch + self.slots as u64 > self.epoch)
            .map(|(_, bytes)| bytes)
            .sum()
    }

    fn heavy_hitters(&self, k: usize) -> Vec<(u64, u64)> {
        let mut scored: Vec<(u64, u64)> = self
            .keys
            .iter()
            .filter_map(|&flow| {
                let bytes = self.windowed_bytes(flow);
                (bytes > 0).then_some((flow, bytes))
            })
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    fn resident_bytes(&self) -> usize {
        // The open-addressed table (slot array) plus each entry's heap slot
        // ring plus the ordered key list.
        let table = (self.flows.len() * 8).max(16) / 7
            * std::mem::size_of::<Option<(u64, Vec<(u64, u64)>)>>();
        let rings = self.flows.len() * self.slots * std::mem::size_of::<(u64, u64)>();
        let keys = self.keys.capacity() * std::mem::size_of::<u64>();
        table + rings + keys + self.ring.resident_bytes()
    }
}

/// The estimator implementations, behind the [`LoadEstimator`] facade.
#[derive(Debug, Clone)]
enum Inner {
    Exact(ExactEstimator),
    Sketch {
        ring: SlidingWindowEstimator,
        sketch: SlidingSketch,
    },
}

/// The load estimator a [`crate::FleetServer`] feeds and the fleet
/// controller's decision ladder reads.
///
/// One surface, two implementations (see [`EstimatorKind`]): the fleet
/// records a tick's offered load through [`LoadEstimator::record`] and every
/// packet arrival through [`LoadEstimator::record_arrival`]; the ladder
/// queries [`LoadEstimator::windowed`] and [`LoadEstimator::peak`]. Both
/// variants answer mean/peak from the same tick-sample ring, so the
/// *decisions* are identical — what changes is the per-flow state behind
/// [`LoadEstimator::heavy_hitters`] and [`LoadEstimator::resident_bytes`]:
/// exact tables grow with distinct flows, the sketch does not.
#[derive(Debug, Clone)]
pub struct LoadEstimator {
    inner: Inner,
}

impl LoadEstimator {
    /// Builds the estimator `config` describes, with the window split into
    /// `interval`-aligned slots (the control tick cadence): the in-progress
    /// tick plus `window / interval` sealed ones, mirroring the tick-sample
    /// ring's eviction rule.
    pub fn new(config: &EstimatorConfig, interval: SimDuration) -> Self {
        let slots = if interval.is_zero() {
            1
        } else {
            (config.window.as_nanos() / interval.as_nanos()) as usize + 1
        };
        let inner = match config.kind {
            EstimatorKind::Exact => Inner::Exact(ExactEstimator::new(config.window, slots)),
            EstimatorKind::Sketch => Inner::Sketch {
                ring: SlidingWindowEstimator::new(config.window),
                sketch: SlidingSketch::new(slots, config.depth, config.width, config.top_k),
            },
        };
        LoadEstimator { inner }
    }

    /// Which implementation is running.
    pub fn kind(&self) -> EstimatorKind {
        match &self.inner {
            Inner::Exact(_) => EstimatorKind::Exact,
            Inner::Sketch { .. } => EstimatorKind::Sketch,
        }
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        match &self.inner {
            Inner::Exact(exact) => exact.ring.window(),
            Inner::Sketch { ring, .. } => ring.window(),
        }
    }

    /// Records the offered load measured over the tick ending at `now` and
    /// seals the tick's per-flow accounting (the window slides one slot).
    /// Out-of-order timestamps are clamped monotone (and debug-asserted —
    /// see `SlidingWindowEstimator::record`).
    pub fn record(&mut self, now: SimTime, offered: Gbps) {
        match &mut self.inner {
            Inner::Exact(exact) => {
                exact.ring.record(now, offered);
                exact.epoch += 1;
            }
            Inner::Sketch { ring, sketch } => {
                ring.record(now, offered);
                sketch.rotate();
            }
        }
    }

    /// Accounts `bytes` arriving for `flow` in the current tick.
    pub fn record_arrival(&mut self, flow: u64, bytes: u64) {
        match &mut self.inner {
            Inner::Exact(exact) => exact.record_arrival(flow, bytes),
            Inner::Sketch { sketch, .. } => sketch.record(flow, bytes),
        }
    }

    /// The windowed mean load (zero with no samples).
    pub fn windowed(&self) -> Gbps {
        match &self.inner {
            Inner::Exact(exact) => exact.ring.mean(),
            Inner::Sketch { ring, .. } => ring.mean(),
        }
    }

    /// The windowed peak load (zero with no samples).
    pub fn peak(&self) -> Gbps {
        match &self.inner {
            Inner::Exact(exact) => exact.ring.peak(),
            Inner::Sketch { ring, .. } => ring.peak(),
        }
    }

    /// The most recent tick's load (zero with no samples).
    pub fn latest(&self) -> Gbps {
        match &self.inner {
            Inner::Exact(exact) => exact.ring.latest(),
            Inner::Sketch { ring, .. } => ring.latest(),
        }
    }

    /// Number of tick samples currently inside the window.
    pub fn samples(&self) -> usize {
        match &self.inner {
            Inner::Exact(exact) => exact.ring.len(),
            Inner::Sketch { ring, .. } => ring.len(),
        }
    }

    /// True when no tick sample is inside the window yet.
    pub fn is_empty(&self) -> bool {
        match &self.inner {
            Inner::Exact(exact) => exact.ring.is_empty(),
            Inner::Sketch { ring, .. } => ring.is_empty(),
        }
    }

    /// The flow's estimated bytes across the window: exact for
    /// [`EstimatorKind::Exact`], a count-min overestimate within the
    /// [`LoadEstimator::error_bound`] for [`EstimatorKind::Sketch`].
    pub fn windowed_flow_bytes(&self, flow: u64) -> u64 {
        match &self.inner {
            Inner::Exact(exact) => exact.windowed_bytes(flow),
            Inner::Sketch { sketch, .. } => sketch.estimate(flow),
        }
    }

    /// The `k` heaviest flows of the window as `(flow, bytes)`, heaviest
    /// first, ties broken by lowest flow id. Exact truth for
    /// [`EstimatorKind::Exact`]; for [`EstimatorKind::Sketch`] the set is
    /// drawn from the sketch's bounded candidate table and each count is a
    /// count-min estimate.
    pub fn heavy_hitters(&self, k: usize) -> Vec<(u64, u64)> {
        match &self.inner {
            Inner::Exact(exact) => exact.heavy_hitters(k),
            Inner::Sketch { sketch, .. } => sketch.heavy_hitters(k),
        }
    }

    /// The (epsilon, delta) overcount bound of
    /// [`LoadEstimator::windowed_flow_bytes`]: `estimate <= truth +
    /// epsilon * window_bytes` with probability at least `1 - delta`.
    /// `(0, 0)` for the exact estimator.
    pub fn error_bound(&self) -> (f64, f64) {
        match &self.inner {
            Inner::Exact(_) => (0.0, 0.0),
            Inner::Sketch { sketch, .. } => sketch.error_bound(),
        }
    }

    /// Bytes of memory resident in the estimator's per-flow state (plus the
    /// tick ring). The ablation's headline number: exact grows with distinct
    /// flows, the sketch is fixed at construction.
    pub fn resident_bytes(&self) -> usize {
        match &self.inner {
            Inner::Exact(exact) => exact.resident_bytes(),
            Inner::Sketch { ring, sketch } => ring.resident_bytes() + sketch.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> SlidingWindowEstimator {
        SlidingWindowEstimator::new(SimDuration::from_millis(4))
    }

    #[test]
    fn empty_estimator_reports_zero() {
        let e = estimator();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.mean(), Gbps::ZERO);
        assert_eq!(e.peak(), Gbps::ZERO);
        assert_eq!(e.latest(), Gbps::ZERO);
        assert_eq!(e.window(), SimDuration::from_millis(4));
    }

    #[test]
    fn mean_and_peak_track_the_window() {
        let mut e = estimator();
        e.record(SimTime::from_millis(1), Gbps::new(1.0));
        e.record(SimTime::from_millis(2), Gbps::new(3.0));
        assert_eq!(e.len(), 2);
        assert!((e.mean().as_gbps() - 2.0).abs() < 1e-12);
        assert_eq!(e.peak(), Gbps::new(3.0));
        assert_eq!(e.latest(), Gbps::new(3.0));
    }

    #[test]
    fn samples_expire_after_the_window() {
        let mut e = estimator();
        e.record(SimTime::from_millis(1), Gbps::new(9.0));
        e.record(SimTime::from_millis(6), Gbps::new(1.0));
        // The 9 Gbps burst at t=1ms is 5ms old at t=6ms: outside the 4ms
        // window, so only the recent sample remains.
        assert_eq!(e.len(), 1);
        assert_eq!(e.mean(), Gbps::new(1.0));
        assert_eq!(e.peak(), Gbps::new(1.0));
    }

    #[test]
    fn peak_survives_a_quiet_poll_inside_the_window() {
        let mut e = estimator();
        e.record(SimTime::from_millis(1), Gbps::new(2.5));
        e.record(SimTime::from_millis(2), Gbps::new(0.1));
        // An instantaneous poll would see 0.1 Gbps and declare the overload
        // over; the windowed peak still remembers the burst.
        assert_eq!(e.peak(), Gbps::new(2.5));
        assert_eq!(e.latest(), Gbps::new(0.1));
    }

    /// The pinned out-of-order behaviour: a sample timestamped before the
    /// latest one (a resumed run re-recording its boundary tick) is clamped
    /// to the latest time instead of corrupting the ring's monotone order.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "out-of-order"))]
    fn out_of_order_samples_are_clamped_monotone() {
        let mut e = estimator();
        e.record(SimTime::from_millis(5), Gbps::new(2.0));
        e.record(SimTime::from_millis(3), Gbps::new(4.0));
        // Release builds clamp: both samples live at t=5ms, in record order.
        assert_eq!(e.len(), 2);
        assert_eq!(e.latest(), Gbps::new(4.0));
        assert_eq!(e.peak(), Gbps::new(4.0));
        // Eviction keyed by the clamped (not raw) time: a later sample one
        // window after the clamp point evicts both earlier samples.
        e.record(SimTime::from_millis(10), Gbps::new(1.0));
        assert_eq!(e.len(), 1);
    }

    /// The clamp must not resurrect evicted samples: recording at an older
    /// time keys eviction to the clamped (latest) time, never backwards.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "out-of-order"))]
    fn clamped_samples_do_not_unevict() {
        let mut e = estimator();
        e.record(SimTime::from_millis(1), Gbps::new(9.0));
        e.record(SimTime::from_millis(6), Gbps::new(1.0));
        assert_eq!(e.len(), 1, "the burst expired");
        e.record(SimTime::from_millis(2), Gbps::new(5.0));
        assert_eq!(e.len(), 2, "clamped to t=6ms, joining the window");
        assert_eq!(e.peak(), Gbps::new(5.0));
    }

    fn config(kind: EstimatorKind) -> EstimatorConfig {
        EstimatorConfig::of(kind).with_window(SimDuration::from_micros(1_500))
    }

    #[test]
    fn facade_reports_kind_window_and_bounds() {
        let interval = SimDuration::from_micros(500);
        let exact = LoadEstimator::new(&config(EstimatorKind::Exact), interval);
        assert_eq!(exact.kind(), EstimatorKind::Exact);
        assert_eq!(exact.window(), SimDuration::from_micros(1_500));
        assert_eq!(exact.error_bound(), (0.0, 0.0));
        let sketch = LoadEstimator::new(&config(EstimatorKind::Sketch), interval);
        assert_eq!(sketch.kind(), EstimatorKind::Sketch);
        let (eps, delta) = sketch.error_bound();
        assert!(eps > 0.0 && delta > 0.0);
    }

    #[test]
    fn both_kinds_answer_identical_windowed_means() {
        let interval = SimDuration::from_micros(500);
        let mut exact = LoadEstimator::new(&config(EstimatorKind::Exact), interval);
        let mut sketch = LoadEstimator::new(&config(EstimatorKind::Sketch), interval);
        for tick in 1..=6u64 {
            let now = SimTime::from_micros(tick * 500);
            let load = Gbps::new(tick as f64 * 0.3);
            exact.record(now, load);
            sketch.record(now, load);
            assert_eq!(exact.windowed(), sketch.windowed(), "tick {tick}");
            assert_eq!(exact.peak(), sketch.peak(), "tick {tick}");
            assert_eq!(exact.latest(), sketch.latest(), "tick {tick}");
            assert_eq!(exact.samples(), sketch.samples(), "tick {tick}");
        }
    }

    #[test]
    fn exact_windowed_flow_bytes_slide_with_the_ticks() {
        let interval = SimDuration::from_micros(500);
        // window/interval = 3 -> 4 slots: the in-progress tick + 3 sealed.
        let mut e = LoadEstimator::new(&config(EstimatorKind::Exact), interval);
        e.record_arrival(42, 1000);
        for tick in 1..=3u64 {
            e.record(SimTime::from_micros(tick * 500), Gbps::new(1.0));
            assert_eq!(e.windowed_flow_bytes(42), 1000, "tick {tick}");
        }
        e.record(SimTime::from_micros(2_000), Gbps::new(1.0));
        assert_eq!(e.windowed_flow_bytes(42), 0, "slid out after 4 ticks");
    }

    #[test]
    fn exact_heavy_hitters_are_ground_truth() {
        let interval = SimDuration::from_micros(500);
        let mut e = LoadEstimator::new(&config(EstimatorKind::Exact), interval);
        e.record_arrival(1, 100);
        e.record_arrival(2, 900);
        e.record_arrival(1, 50);
        e.record_arrival(3, 150);
        let hh = e.heavy_hitters(2);
        assert_eq!(hh, vec![(2, 900), (1, 150)]);
        assert_eq!(e.windowed_flow_bytes(1), 150);
        assert_eq!(e.windowed_flow_bytes(9), 0);
    }

    #[test]
    fn sketch_never_undercounts_the_exact_table() {
        let interval = SimDuration::from_micros(500);
        let mut exact = LoadEstimator::new(&config(EstimatorKind::Exact), interval);
        let mut sketch = LoadEstimator::new(&config(EstimatorKind::Sketch), interval);
        for i in 0..2000u64 {
            let (flow, bytes) = (i % 97, (i % 13 + 1) * 64);
            exact.record_arrival(flow, bytes);
            sketch.record_arrival(flow, bytes);
            if i % 400 == 399 {
                let now = SimTime::from_micros((i / 400 + 1) * 500);
                exact.record(now, Gbps::new(1.0));
                sketch.record(now, Gbps::new(1.0));
            }
        }
        for flow in 0..97u64 {
            assert!(
                sketch.windowed_flow_bytes(flow) >= exact.windowed_flow_bytes(flow),
                "flow {flow} undercounted"
            );
        }
    }

    #[test]
    fn sketch_memory_is_flow_count_independent() {
        let interval = SimDuration::from_micros(500);
        let mut exact = LoadEstimator::new(&config(EstimatorKind::Exact), interval);
        let mut sketch = LoadEstimator::new(&config(EstimatorKind::Sketch), interval);
        let sketch_before = sketch.resident_bytes();
        for flow in 0..50_000u64 {
            exact.record_arrival(flow, 64);
            sketch.record_arrival(flow, 64);
        }
        assert!(
            exact.resident_bytes() > 50_000 * 32,
            "exact pays per distinct flow"
        );
        assert!(
            sketch.resident_bytes() < sketch_before + 64 * 1024,
            "sketch stays near its fixed footprint"
        );
        assert!(exact.resident_bytes() > 10 * sketch.resident_bytes());
    }

    #[test]
    fn estimator_config_serde_defaults_missing_keys() {
        use serde::{Deserialize, Serialize};
        let config = EstimatorConfig::of(EstimatorKind::Sketch);
        let back = EstimatorConfig::from_value(&config.to_value()).unwrap();
        assert_eq!(back, config);
        // An empty object (a config written before the knob existed) and a
        // kind-only object both deserialise with baseline defaults.
        let empty = EstimatorConfig::from_value(&Value::Object(Map::new())).unwrap();
        assert_eq!(empty, EstimatorConfig::default());
        assert_eq!(empty.kind, EstimatorKind::Exact);
        let mut kind_only = Map::new();
        kind_only.insert("kind".to_owned(), Value::String("sketch".to_owned()));
        let parsed = EstimatorConfig::from_value(&Value::Object(kind_only)).unwrap();
        assert_eq!(parsed.kind, EstimatorKind::Sketch);
        assert_eq!(parsed.width, EstimatorConfig::default().width);
        assert!(EstimatorConfig::from_value(&Value::Null).is_err());
        assert!(EstimatorKind::from_value(&Value::String("nope".into())).is_err());
    }

    #[test]
    fn estimator_kind_names_round_trip() {
        for kind in EstimatorKind::ALL {
            assert_eq!(EstimatorKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(EstimatorKind::from_name("nope"), None);
        assert_eq!(EstimatorKind::default(), EstimatorKind::Exact);
    }
}
