//! Sliding-window load estimation.
//!
//! The single-server orchestrator polls the *instantaneous* offered load,
//! which whipsaws under bursty traffic: one quiet poll interval during a
//! flash crowd and the controller believes the overload is gone. Following
//! the Memento line of work (sliding-window sketches that survive bursts),
//! the fleet controller instead feeds every decision from a
//! [`SlidingWindowEstimator`]: a ring of timestamped load samples over a
//! fixed window, answering both the windowed mean (used to decide
//! migrations and scale-out) and the windowed peak (used to hold off
//! scale-in until the *whole* window has receded).

use std::collections::VecDeque;

use pam_types::{Gbps, SimDuration, SimTime};

/// A timestamped offered-load sample.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Sample {
    at: SimTime,
    load: Gbps,
}

/// A sliding window over offered-load samples.
///
/// Samples older than the configured window are evicted on every
/// [`record`](SlidingWindowEstimator::record), so the estimator's memory is
/// bounded by `window / sample_interval`. The queries (`mean`, `peak`,
/// `latest`) do not evict — they reflect the window as of the most recent
/// sample, so record at the current time before querying.
#[derive(Debug, Clone)]
pub struct SlidingWindowEstimator {
    window: SimDuration,
    samples: VecDeque<Sample>,
}

impl SlidingWindowEstimator {
    /// Creates an estimator remembering samples for `window`.
    pub fn new(window: SimDuration) -> Self {
        SlidingWindowEstimator {
            window,
            samples: VecDeque::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records a load sample taken at `now` and evicts expired samples.
    pub fn record(&mut self, now: SimTime, load: Gbps) {
        self.samples.push_back(Sample { at: now, load });
        self.evict(now);
    }

    /// Number of samples currently inside the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample is inside the window.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The windowed mean load (zero with no samples).
    pub fn mean(&self) -> Gbps {
        if self.samples.is_empty() {
            return Gbps::ZERO;
        }
        let sum: f64 = self.samples.iter().map(|s| s.load.as_gbps()).sum();
        Gbps::new(sum / self.samples.len() as f64)
    }

    /// The windowed peak load (zero with no samples).
    pub fn peak(&self) -> Gbps {
        self.samples
            .iter()
            .map(|s| s.load)
            .fold(Gbps::ZERO, Gbps::max)
    }

    /// The most recent sample (zero with no samples).
    pub fn latest(&self) -> Gbps {
        self.samples.back().map(|s| s.load).unwrap_or(Gbps::ZERO)
    }

    /// Drops samples that left the window as of `now`.
    fn evict(&mut self, now: SimTime) {
        while let Some(front) = self.samples.front() {
            if now.duration_since(front.at) > self.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> SlidingWindowEstimator {
        SlidingWindowEstimator::new(SimDuration::from_millis(4))
    }

    #[test]
    fn empty_estimator_reports_zero() {
        let e = estimator();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.mean(), Gbps::ZERO);
        assert_eq!(e.peak(), Gbps::ZERO);
        assert_eq!(e.latest(), Gbps::ZERO);
        assert_eq!(e.window(), SimDuration::from_millis(4));
    }

    #[test]
    fn mean_and_peak_track_the_window() {
        let mut e = estimator();
        e.record(SimTime::from_millis(1), Gbps::new(1.0));
        e.record(SimTime::from_millis(2), Gbps::new(3.0));
        assert_eq!(e.len(), 2);
        assert!((e.mean().as_gbps() - 2.0).abs() < 1e-12);
        assert_eq!(e.peak(), Gbps::new(3.0));
        assert_eq!(e.latest(), Gbps::new(3.0));
    }

    #[test]
    fn samples_expire_after_the_window() {
        let mut e = estimator();
        e.record(SimTime::from_millis(1), Gbps::new(9.0));
        e.record(SimTime::from_millis(6), Gbps::new(1.0));
        // The 9 Gbps burst at t=1ms is 5ms old at t=6ms: outside the 4ms
        // window, so only the recent sample remains.
        assert_eq!(e.len(), 1);
        assert_eq!(e.mean(), Gbps::new(1.0));
        assert_eq!(e.peak(), Gbps::new(1.0));
    }

    #[test]
    fn peak_survives_a_quiet_poll_inside_the_window() {
        let mut e = estimator();
        e.record(SimTime::from_millis(1), Gbps::new(2.5));
        e.record(SimTime::from_millis(2), Gbps::new(0.1));
        // An instantaneous poll would see 0.1 Gbps and declare the overload
        // over; the windowed peak still remembers the burst.
        assert_eq!(e.peak(), Gbps::new(2.5));
        assert_eq!(e.latest(), Gbps::new(0.1));
    }
}
