//! The fleet layer: from one box to N.
//!
//! The poster's PAM loop saves a *single* server's SmartNIC by pushing
//! neighbour vNFs to the host CPU; its answer to a hopeless overload is the
//! stubbed "scale out" signal. This crate makes that signal real:
//!
//! * [`FleetServer`] — one server (SmartNIC + CPU + PCIe + chain runtime)
//!   with its own local [`pam_orchestrator::Orchestrator`] and a
//!   [`LoadEstimator`] smoothing its load (exact per-flow accounting or a
//!   sliding heavy-hitter sketch, see [`sketch`]);
//! * [`SteeringTable`] — flow-sticky, monotone re-steering of a fraction of
//!   one server's flows to another;
//! * [`Fleet`] — N servers under a **single deterministic
//!   [`pam_sim::EventQueue`]**, with a controller walking the full decision
//!   ladder every tick: local PAM migration → cross-server scale-out →
//!   scale-in when the windowed load recedes;
//! * [`NodeHealth`] — the controller's liveness view under fault injection:
//!   crashed servers black-hole their ingress and drain their steering
//!   entries to survivors; recovered servers re-admit behind a warm-up
//!   guard (see [`pam_sim::FaultPlan`] for the fault schedule itself);
//! * [`FleetReport`] — the machine-readable outcome (`fleet_bench` dumps it
//!   as JSON and CI gates on it).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod controller;
pub mod estimator;
pub mod health;
pub mod node;
pub mod report;
pub mod shard;
pub mod sketch;
pub mod steering;

pub use controller::{Fleet, FleetAction, FleetConfig, FleetDecisionRecord};
pub use estimator::{EstimatorConfig, EstimatorKind, LoadEstimator};
pub use health::{NodeHealth, DEFAULT_WARMUP};
pub use node::{FleetServer, ServerSpec};
pub use report::{FleetReport, FleetTotals, ServerReport};
pub use shard::{ShardLane, ShardRunStats};
pub use steering::{Spill, SteeringStats, SteeringTable};
