//! The fleet: N servers under one deterministic event queue, and the
//! controller that walks the full decision ladder.
//!
//! The single-server orchestrator of PR 1 stops at the poster's escape
//! hatch: when migration cannot relieve the overload it merely *counts* a
//! scale-out request. The fleet controller acts on it. Every control tick
//! it walks, per server, the ladder
//!
//! 1. **local PAM migration** — the server's own
//!    [`Orchestrator`](pam_orchestrator::Orchestrator) runs its
//!    strategy against the windowed load estimate and executes any
//!    migration on the server's devices;
//! 2. **cross-server scale-out** — if the strategy answers
//!    [`Decision::ScaleOut`], a slice of the server's *flows* is re-steered
//!    (flow-sticky, monotone; see [`SteeringTable`]) to the least-loaded
//!    recipient with headroom;
//! 3. **scale-in** — once the server's windowed *peak* utilisation has
//!    receded, the spilled flows return home step by step.
//!
//! All data-plane and control-plane causality flows through a single
//! [`EventQueue`] (home-packet arrivals and control ticks), so two runs of
//! the same fleet are event-for-event identical — the replay-determinism
//! tests serialize whole reports and compare bytes.

use pam_core::{Decision, ResourceModel};
use pam_orchestrator::OrchestratorConfig;
use pam_protocol::{
    Action as HandoverAction, Event as HandoverEvent, HandoverState, Phase, ProtocolConfig,
};
use pam_runtime::state_transfer_size;
use pam_sim::{EventQueue, FaultKind, FaultPlan, LinkDirection, PcieLink, PcieLinkConfig};
use pam_types::{ByteSize, Device, Gbps, PamError, Result, ServerId, SimDuration, SimTime};
use serde::value::{Map, Value};
use serde::{Deserialize, Error, Serialize};

use crate::estimator::{EstimatorConfig, LoadEstimator};
use crate::health::{NodeHealth, DEFAULT_WARMUP};
use crate::node::{FleetServer, ServerSpec};
use crate::report::{FleetReport, FleetTotals, ServerReport};
use crate::steering::SteeringTable;

/// Fleet-level control parameters (the per-server loop keeps its own
/// [`OrchestratorConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Per-server control loop (strategy, poll cadence, cooldown).
    pub orchestrator: OrchestratorConfig,
    /// The load estimator feeding every fleet decision (kind, window,
    /// sketch dimensions).
    pub estimator: EstimatorConfig,
    /// Whether the ladder may re-steer flows across servers at all
    /// (disabled for the pure single-box baselines).
    pub scale_out_enabled: bool,
    /// Fraction of a server's flows moved per scale-out action.
    pub spill_step: f64,
    /// Cap on the total fraction of one server's flows living elsewhere.
    pub max_spill: f64,
    /// A recipient must sit below this windowed NIC utilisation.
    pub recipient_headroom: f64,
    /// Scale in only when the windowed *peak* NIC utilisation of the home
    /// server is below this.
    pub scale_in_below: f64,
    /// Minimum time between two scale actions on the same server.
    pub scale_cooldown: SimDuration,
    /// The inter-server link cross-server state handoffs travel over (the
    /// same rate-server + fixed-latency model the per-server PCIe uses).
    pub interconnect: PcieLinkConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            orchestrator: OrchestratorConfig::default(),
            estimator: EstimatorConfig::default(),
            scale_out_enabled: true,
            spill_step: 0.25,
            max_spill: 0.5,
            recipient_headroom: 0.7,
            scale_in_below: 0.55,
            scale_cooldown: SimDuration::from_millis(4),
            interconnect: PcieLinkConfig::inter_server(),
        }
    }
}

impl FleetConfig {
    /// The default fleet config running the given per-server strategy.
    pub fn with_strategy(strategy: pam_core::StrategyKind) -> Self {
        FleetConfig {
            orchestrator: OrchestratorConfig::with_strategy(strategy),
            ..Default::default()
        }
    }

    /// Selects the load estimator, keeping the other knobs.
    pub fn with_estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }
}

// Hand-serialised so configs written before the estimator knob existed (and
// the committed baselines) deserialise with the exact estimator instead of
// failing on a missing field (the vendored serde derive has no
// `#[serde(default)]`). The pre-redesign flat `estimator_window` key is
// still honoured as a legacy alias for `estimator.window`.
impl Serialize for FleetConfig {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("orchestrator".to_owned(), self.orchestrator.to_value());
        map.insert("estimator".to_owned(), self.estimator.to_value());
        map.insert(
            "scale_out_enabled".to_owned(),
            self.scale_out_enabled.to_value(),
        );
        map.insert("spill_step".to_owned(), self.spill_step.to_value());
        map.insert("max_spill".to_owned(), self.max_spill.to_value());
        map.insert(
            "recipient_headroom".to_owned(),
            self.recipient_headroom.to_value(),
        );
        map.insert("scale_in_below".to_owned(), self.scale_in_below.to_value());
        map.insert("scale_cooldown".to_owned(), self.scale_cooldown.to_value());
        map.insert("interconnect".to_owned(), self.interconnect.to_value());
        Value::Object(map)
    }
}

impl Deserialize for FleetConfig {
    fn from_value(value: &Value) -> std::result::Result<Self, Error> {
        let map = match value {
            Value::Object(map) => map,
            _ => return Err(Error::custom("FleetConfig must be an object")),
        };
        let defaults = FleetConfig::default();
        let mut estimator = match map.get("estimator") {
            Some(value) => EstimatorConfig::from_value(value)?,
            None => defaults.estimator,
        };
        if let Some(value) = map.get("estimator_window") {
            estimator.window = SimDuration::from_value(value)?;
        }
        Ok(FleetConfig {
            orchestrator: match map.get("orchestrator") {
                Some(value) => OrchestratorConfig::from_value(value)?,
                None => defaults.orchestrator,
            },
            estimator,
            scale_out_enabled: match map.get("scale_out_enabled") {
                Some(value) => bool::from_value(value)?,
                None => defaults.scale_out_enabled,
            },
            spill_step: match map.get("spill_step") {
                Some(value) => f64::from_value(value)?,
                None => defaults.spill_step,
            },
            max_spill: match map.get("max_spill") {
                Some(value) => f64::from_value(value)?,
                None => defaults.max_spill,
            },
            recipient_headroom: match map.get("recipient_headroom") {
                Some(value) => f64::from_value(value)?,
                None => defaults.recipient_headroom,
            },
            scale_in_below: match map.get("scale_in_below") {
                Some(value) => f64::from_value(value)?,
                None => defaults.scale_in_below,
            },
            scale_cooldown: match map.get("scale_cooldown") {
                Some(value) => SimDuration::from_value(value)?,
                None => defaults.scale_cooldown,
            },
            interconnect: match map.get("interconnect") {
                Some(value) => PcieLinkConfig::from_value(value)?,
                None => defaults.interconnect,
            },
        })
    }
}

/// What the fleet ladder did for one server at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FleetAction {
    /// Nothing beyond the local decision.
    None,
    /// The local strategy executed this many migrations.
    LocalMigration(u64),
    /// Flows re-steered to the recipient; the new spill fraction.
    ScaleOut(ServerId, f64),
    /// The strategy wanted to scale out but no recipient had headroom.
    ScaleOutBlocked,
    /// Spilled flows returning home; the remaining spill fraction.
    ScaleIn(f64),
}

/// One fleet-ladder decision for one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetDecisionRecord {
    /// When the tick ran.
    pub at: SimTime,
    /// The server the record is about.
    pub server: ServerId,
    /// The windowed mean load the decision was based on.
    pub windowed_load: Gbps,
    /// The windowed peak load (gates scale-in).
    pub peak_load: Gbps,
    /// Predicted SmartNIC utilisation at the windowed mean load.
    pub nic_utilisation: f64,
    /// What the ladder did.
    pub action: FleetAction,
}

/// The events the fleet's single deterministic queue carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FleetEvent {
    /// The next home packet of this server is due.
    Arrival(ServerId),
    /// Run the control ladder over every server.
    ControlTick,
    /// Deliver fault-plan event `index` (crash, recovery, flap or swing).
    Fault(usize),
    /// A link flap on this server ends; recover its transport unless a
    /// later, overlapping flap extended the outage past this instant.
    LinkRestore(ServerId),
    /// A capacity swing on this server ends; restore nominal bandwidth.
    SwingRestore(ServerId),
}

/// N servers, the steering table and the decision-ladder controller.
///
/// Fields are crate-visible so the sharded runner in [`crate::shard`] can
/// drive the same queue, servers and steering table as [`Fleet::run`].
pub struct Fleet {
    pub(crate) config: FleetConfig,
    pub(crate) servers: Vec<FleetServer>,
    pub(crate) steering: SteeringTable,
    pub(crate) events: EventQueue<FleetEvent>,
    log: Vec<FleetDecisionRecord>,
    last_scale_action: Vec<Option<SimTime>>,
    /// The inter-server link cross-server state handoffs travel over.
    interconnect: PcieLink,
    scale_outs: u64,
    scale_ins: u64,
    scale_out_blocked: u64,
    pub(crate) control_steps: u64,
    handoff_flows: u64,
    handoff_bytes: u64,
    handoff_us: f64,
    started: bool,
    /// The fault schedule injected through the event queue, if any.
    fault_plan: Option<FaultPlan>,
    /// The controller's liveness view of every server.
    pub(crate) health: NodeHealth,
    /// Packets routed to a crashed server and black-holed at its ingress.
    pub(crate) fault_drops: u64,
    /// When the last control tick ran — the start of the current
    /// synchronisation window for the sharded runner's safety assertion.
    pub(crate) last_tick: SimTime,
    /// Wall-clock side channel of the sharded runner (empty for sequential
    /// runs); never part of the gated [`FleetReport`].
    pub(crate) shard_stats: crate::shard::ShardRunStats,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("servers", &self.servers.len())
            .field("control_steps", &self.control_steps)
            .field("scale_outs", &self.scale_outs)
            .field("scale_ins", &self.scale_ins)
            .finish()
    }
}

impl Fleet {
    /// Builds a fleet from one spec per server.
    pub fn new(specs: Vec<ServerSpec>, config: FleetConfig) -> Result<Self> {
        let mut servers = Vec::with_capacity(specs.len());
        for (index, spec) in specs.into_iter().enumerate() {
            let estimator =
                LoadEstimator::new(&config.estimator, config.orchestrator.poll_interval);
            servers.push(FleetServer::new(
                ServerId::from(index),
                spec,
                config.orchestrator,
                estimator,
            )?);
        }
        let count = servers.len();
        Ok(Fleet {
            servers,
            steering: SteeringTable::new(count),
            events: EventQueue::new(),
            log: Vec::new(),
            last_scale_action: vec![None; count],
            interconnect: PcieLink::new(config.interconnect),
            config,
            scale_outs: 0,
            scale_ins: 0,
            scale_out_blocked: 0,
            control_steps: 0,
            handoff_flows: 0,
            handoff_bytes: 0,
            handoff_us: 0.0,
            started: false,
            fault_plan: None,
            health: NodeHealth::new(count, DEFAULT_WARMUP),
            fault_drops: 0,
            last_tick: SimTime::ZERO,
            shard_stats: crate::shard::ShardRunStats::default(),
        })
    }

    /// The fleet configuration in force.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The servers, in id order.
    pub fn servers(&self) -> &[FleetServer] {
        &self.servers
    }

    /// The steering table.
    pub fn steering(&self) -> &SteeringTable {
        &self.steering
    }

    /// Every fleet-ladder decision taken so far.
    pub fn log(&self) -> &[FleetDecisionRecord] {
        &self.log
    }

    /// Number of scale-out actions executed.
    pub fn scale_outs(&self) -> u64 {
        self.scale_outs
    }

    /// Number of scale-in actions executed.
    pub fn scale_ins(&self) -> u64 {
        self.scale_ins
    }

    /// Total discrete events scheduled across the fleet: the controller's own
    /// queue (arrivals, control ticks) plus every server runtime's data-plane
    /// queue. Deterministic for a given scenario, so it doubles as the
    /// denominator of the simulator's events/second throughput figure.
    pub fn events_scheduled(&self) -> u64 {
        self.events.scheduled_total()
            + self
                .servers
                .iter()
                .map(|s| s.runtime().events_scheduled())
                .sum::<u64>()
    }

    /// Wall-clock statistics of every sharded run so far (empty when only
    /// [`Fleet::run`] was used). A side channel: never part of the report.
    pub fn shard_stats(&self) -> &crate::shard::ShardRunStats {
        &self.shard_stats
    }

    /// Installs a fault schedule. Must be called before the first
    /// [`Fleet::run`]/[`crate::shard::run_sharded`] window (the fault events
    /// are scheduled once, when the queue starts) and the plan must validate
    /// against this fleet's server count.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<()> {
        if self.started {
            return Err(PamError::state(
                "the fault plan must be installed before the fleet starts".to_owned(),
            ));
        }
        plan.validate(self.servers.len())
            .map_err(PamError::config)?;
        self.fault_plan = Some(plan);
        Ok(())
    }

    /// Overrides the warm-up guard recovered servers sit behind before the
    /// ladder touches them again (default [`DEFAULT_WARMUP`]).
    pub fn set_fault_warmup(&mut self, warmup: SimDuration) {
        self.health.set_warmup(warmup);
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The controller's liveness view of every server.
    pub fn health(&self) -> &NodeHealth {
        &self.health
    }

    /// Packets routed to a crashed server and black-holed at its ingress.
    pub fn fault_drops(&self) -> u64 {
        self.fault_drops
    }

    /// Lazily schedules the initial arrivals (in server-id order) and the
    /// first control tick. Shared by [`Fleet::run`] and
    /// [`crate::shard::run_sharded`] so both start from the same queue state.
    pub(crate) fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for index in 0..self.servers.len() {
            if let Some(at) = self.servers[index].next_arrival() {
                self.events
                    .schedule(at, FleetEvent::Arrival(ServerId::from(index)));
            }
        }
        self.events.schedule(
            SimTime::ZERO + self.config.orchestrator.poll_interval,
            FleetEvent::ControlTick,
        );
        if let Some(plan) = &self.fault_plan {
            for (index, event) in plan.events().iter().enumerate() {
                self.events.schedule(event.at, FleetEvent::Fault(index));
            }
        }
    }

    /// Runs the fleet until `until`, interleaving every server's home
    /// arrivals and the control ticks through the single event queue.
    /// Returns the number of control ticks run.
    pub fn run(&mut self, until: SimTime) -> u64 {
        self.start();
        let ticks_before = self.control_steps;
        while let Some(next) = self.events.peek_time() {
            if next > until {
                break;
            }
            let Some((now, event)) = self.events.pop() else {
                unreachable!("peeked event must pop");
            };
            match event {
                FleetEvent::Arrival(home) => self.on_arrival(now, home),
                FleetEvent::ControlTick => {
                    self.control_tick(now);
                    self.events.schedule(
                        now + self.config.orchestrator.poll_interval,
                        FleetEvent::ControlTick,
                    );
                }
                FleetEvent::Fault(index) => self.apply_fault(now, index),
                FleetEvent::LinkRestore(server) => self.link_restore(now, server),
                FleetEvent::SwingRestore(server) => self.swing_restore(now, server),
            }
        }
        for server in &mut self.servers {
            server.runtime_mut().drain_until(until);
        }
        self.control_steps - ticks_before
    }

    /// Delivers one home packet of `home`, re-steered or not.
    fn on_arrival(&mut self, now: SimTime, home: ServerId) {
        if let Some((send_time, packet)) = self.servers[home.index()].take_pending() {
            debug_assert_eq!(
                send_time, now,
                "arrival event fires at the packet's send time"
            );
            let target = self.steering.route(home, packet.flow_id());
            if !self.health.is_alive(target) {
                // A crashed server black-holes its ingress: the packet is
                // counted and dropped before admission, never submitted.
                // (Between a crash and its failover spill taking effect
                // there is no window — `crash_server` installs the spill at
                // the crash instant — so this arm only fires when *every*
                // candidate survivor was also down.)
                self.fault_drops += 1;
            } else {
                let server = &mut self.servers[target.index()];
                server.note_arrival(packet.flow_id().raw(), packet.size());
                #[cfg(test)]
                server.log_submission(now, packet.flow_id().raw());
                let runtime = server.runtime_mut();
                runtime.drain_until(now);
                runtime.submit(now, packet);
            }
        }
        if let Some(at) = self.servers[home.index()].next_arrival() {
            self.events.schedule(at, FleetEvent::Arrival(home));
        }
    }

    /// One pass of the decision ladder over every server, in id order.
    pub(crate) fn control_tick(&mut self, now: SimTime) {
        self.control_steps += 1;
        self.last_tick = now;

        // Phase 1 — measure: drain every data plane to `now` and feed the
        // sliding windows with the load that actually arrived this tick
        // (home plus re-steered traffic).
        let interval = self.config.orchestrator.poll_interval;
        for server in &mut self.servers {
            server.runtime_mut().drain_until(now);
            let offered = server.take_tick_load(interval);
            server.record_load(now, offered);
        }

        // Phase 2 — decide and act per server. Crashed servers are skipped
        // outright; recovered servers stay skipped until their warm-up guard
        // expires, so the ladder never acts on a server whose windows are
        // still cold. (Phase 1 stays uniform over *all* servers — draining a
        // dead server's already-admitted packets is part of the black-hole
        // semantics and keeps the sharded runner's windows identical.)
        for index in 0..self.servers.len() {
            let server_id = ServerId::from(index);
            if !self.health.eligible(server_id, now) {
                continue;
            }
            let windowed = self.servers[index].windowed_load();
            let peak = self.servers[index].peak_load();

            let record = {
                let server = &mut self.servers[index];
                let (orchestrator, runtime) = server.control_parts();
                orchestrator.step_with_load(runtime, now, windowed)
            };

            let action = match &record.decision {
                Decision::Migrate(_) if !record.executed.is_empty() => {
                    FleetAction::LocalMigration(record.executed.len() as u64)
                }
                Decision::ScaleOut if self.config.scale_out_enabled => {
                    self.try_scale_out(now, server_id)
                }
                _ => self.try_scale_in(now, server_id, peak),
            };

            self.log.push(FleetDecisionRecord {
                at: now,
                server: server_id,
                windowed_load: windowed,
                peak_load: peak,
                nic_utilisation: record.nic_utilisation,
                action,
            });
        }
    }

    /// Rung 2 of the ladder: find a recipient with headroom and re-steer.
    fn try_scale_out(&mut self, now: SimTime, home: ServerId) -> FleetAction {
        if self.in_cooldown(now, home) || self.steering.fraction_of(home) >= self.config.max_spill {
            return FleetAction::None;
        }
        // An existing spill keeps its recipient (one server's overflow never
        // splits across two recipients), but a top-up must re-check that the
        // recipient still has headroom — its own traffic may have risen since
        // the first spill. Otherwise pick the server with the most windowed
        // headroom (ties broken by lowest id, keeping the scan deterministic).
        let recipient = match self.steering.spill_of(home) {
            Some(spill) => {
                let windowed = self.servers[spill.to.index()].windowed_load();
                if self.health.eligible(spill.to, now)
                    && self.nic_utilisation_at(spill.to, windowed) < self.config.recipient_headroom
                {
                    Some(spill.to)
                } else {
                    None
                }
            }
            None => self.pick_recipient(now, home),
        };
        let Some(recipient) = recipient else {
            self.scale_out_blocked += 1;
            return FleetAction::ScaleOutBlocked;
        };
        let before = self.steering.fraction_of(home);
        let fraction = self.steering.scale_out(
            home,
            recipient,
            self.config.spill_step,
            self.config.max_spill,
        );
        // OpenNF-style state handoff: the per-flow state of the newly
        // re-steered slice moves to the recipient over the inter-server
        // link. The same sizing model as live migration applies (the spill
        // is flow-sticky, so each flow's state moves exactly once per step);
        // the transfer is non-blocking — re-steered packets that beat their
        // state simply re-create it, exactly as OpenNF's loss-free mode
        // would buffer — but its bytes and duration are accounted.
        //
        // The handoff is an execution of `pam-protocol`'s model-checked
        // ScaleOutHandoff machine: `Start` exports the slice (no pause —
        // the home server keeps serving its remaining flows), and the slice
        // round's delivery activates the recipient. The exhaustively checked
        // model is what licenses "packets that beat their state re-create
        // it": the recipient's re-created entries outrank the slice.
        let protocol = HandoverState::new(ProtocolConfig::scale_out_handoff());
        let Ok((protocol, actions)) = protocol.step(HandoverEvent::Start) else {
            unreachable!("a fresh handover always accepts Start");
        };
        debug_assert!(actions.contains(HandoverAction::ExportFull));
        debug_assert!(!actions.contains(HandoverAction::PauseSource));
        let runtime = self.servers[home.index()].runtime();
        let moved_flows =
            (runtime.stateful_flow_entries() as f64 * (fraction - before).max(0.0)).round() as u64;
        let bytes = state_transfer_size(
            ByteSize::ZERO,
            runtime.config().state_overhead_per_flow,
            moved_flows as usize,
        );
        let done = self
            .interconnect
            .transfer(now, bytes, LinkDirection::NicToCpu);
        // The slice lands at `done`; its delivery completes the protocol and
        // makes the recipient authoritative for the re-steered flows.
        let Ok((protocol, actions)) = protocol.step(HandoverEvent::RoundDelivered { dirty: 0 })
        else {
            unreachable!("the snapshot phase always accepts the slice delivery");
        };
        debug_assert_eq!(protocol.phase, Phase::Done);
        debug_assert!(actions.contains(HandoverAction::ActivateTarget));
        self.handoff_flows += moved_flows;
        self.handoff_bytes += bytes.as_bytes();
        self.handoff_us += done.duration_since(now).as_micros_f64();
        self.scale_outs += 1;
        self.last_scale_action[home.index()] = Some(now);
        FleetAction::ScaleOut(recipient, fraction)
    }

    /// Rung 3 of the ladder: return spilled flows once the window is calm.
    fn try_scale_in(&mut self, now: SimTime, home: ServerId, peak: Gbps) -> FleetAction {
        if self.steering.fraction_of(home) == 0.0 || self.in_cooldown(now, home) {
            return FleetAction::None;
        }
        if self.nic_utilisation_at(home, peak) >= self.config.scale_in_below {
            return FleetAction::None;
        }
        let fraction = self.steering.scale_in(home, self.config.spill_step);
        self.scale_ins += 1;
        self.last_scale_action[home.index()] = Some(now);
        FleetAction::ScaleIn(fraction)
    }

    /// Delivers fault-plan event `index`. Every runtime is drained to `now`
    /// first — exactly what the sharded runner's window barrier does — so
    /// the fault lands on identical data-plane state in both drivers.
    pub(crate) fn apply_fault(&mut self, now: SimTime, index: usize) {
        let Some(event) = self
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.events().get(index))
            .copied()
        else {
            debug_assert!(false, "fault event {index} scheduled but not in the plan");
            return;
        };
        debug_assert_eq!(event.at, now, "fault events fire at their plan time");
        self.drain_all(now);
        match event.kind {
            FaultKind::ServerCrash { server } => self.crash_server(now, server),
            FaultKind::ServerRecover { server } => self.recover_server(now, server),
            FaultKind::LinkFlap { server, down_for } => {
                self.servers[server.index()]
                    .runtime_mut()
                    .link_flap(now, down_for);
                self.events
                    .schedule(now + down_for, FleetEvent::LinkRestore(server));
            }
            FaultKind::CapacitySwing {
                server,
                factor,
                period,
            } => {
                self.servers[server.index()]
                    .runtime_mut()
                    .link_set_capacity_factor(now, factor);
                self.events
                    .schedule(now + period, FleetEvent::SwingRestore(server));
            }
        }
    }

    /// Ends a link flap on `server`, unless a later overlapping flap pushed
    /// the outage past this restore — every flap schedules its own restore,
    /// and only the one matching the final `down_until` may recover (an
    /// early `recover_transport` would *shorten* the extended outage).
    pub(crate) fn link_restore(&mut self, now: SimTime, server: ServerId) {
        let runtime = self.servers[server.index()].runtime_mut();
        runtime.drain_until(now);
        if runtime.link_down_until() <= now {
            runtime.link_recover(now);
        }
    }

    /// Ends a capacity swing on `server`, restoring nominal bandwidth.
    pub(crate) fn swing_restore(&mut self, now: SimTime, server: ServerId) {
        let runtime = self.servers[server.index()].runtime_mut();
        runtime.drain_until(now);
        runtime.link_set_capacity_factor(now, 1.0);
    }

    /// Drains every runtime's data plane to `now`. Idempotent — the sharded
    /// runner's windows and the sequential driver's per-arrival drains reach
    /// the same state in any interleaving.
    fn drain_all(&mut self, now: SimTime) {
        for server in &mut self.servers {
            server.runtime_mut().drain_until(now);
        }
    }

    /// Crashes `server`: aborts any in-flight pre-copy through the
    /// protocol's `TargetCrash` arc, black-holes its ingress, drains every
    /// steering entry pointing *at* it back home, and fails its own flow
    /// population over to the least-loaded survivor. Already-admitted
    /// packets still complete (the crash is an ingress black-hole, so no
    /// acked per-flow state is ever lost).
    fn crash_server(&mut self, now: SimTime, crashed: ServerId) {
        if !self.health.is_alive(crashed) {
            return;
        }
        {
            let runtime = self.servers[crashed.index()].runtime_mut();
            if runtime.pre_copy_in_progress() {
                // The staged target dies with the box: Snapshot/DirtyRound +
                // TargetCrash → Aborted, DiscardTarget, never ResumeSource.
                let _ = runtime.crash_target(now);
            }
        }
        self.health.crash(crashed);
        // Spills whose *recipient* just died return home: serving re-steered
        // flows at an overloaded home beats black-holing them. A home that is
        // itself down needs a fresh survivor instead.
        let mut orphaned = Vec::new();
        for index in 0..self.servers.len() {
            let home = ServerId::from(index);
            if self
                .steering
                .spill_of(home)
                .is_some_and(|spill| spill.to == crashed)
            {
                self.steering.clear_spill(home);
                if !self.health.is_alive(home) {
                    orphaned.push(home);
                }
            }
        }
        // The crashed server's own ladder spill is superseded by failover.
        self.steering.clear_spill(crashed);
        for home in std::iter::once(crashed).chain(orphaned) {
            if let Some(survivor) = self.pick_failover(home) {
                self.steering.force_spill(home, survivor);
            }
        }
    }

    /// Re-admits `server` behind the warm-up guard. Its forced failover
    /// spill is *not* torn down here: the ladder's ordinary scale-in walks
    /// the flows home step by step once the guard expires, so a recovered
    /// server is re-loaded gradually instead of all at once.
    fn recover_server(&mut self, now: SimTime, server: ServerId) {
        if !self.health.recover(server, now) {
            return;
        }
        // A re-admitted server comes back with clean transport: no pre-crash
        // FIFO watermark, no leftover outage (see the recovered-link
        // regression tests on `PcieLink::recover_transport`).
        self.servers[server.index()].runtime_mut().link_recover(now);
    }

    /// The least-loaded *alive* server other than `home` — failover is
    /// mandatory, so unlike [`Fleet::pick_recipient`] there is no headroom
    /// bar and warming servers qualify. Ties break to the lowest id.
    fn pick_failover(&self, home: ServerId) -> Option<ServerId> {
        let mut best: Option<(ServerId, f64)> = None;
        for (index, server) in self.servers.iter().enumerate() {
            let candidate = ServerId::from(index);
            if candidate == home || !self.health.is_alive(candidate) {
                continue;
            }
            let windowed = server.windowed_load().as_gbps();
            if best.map_or(true, |(_, load)| windowed < load) {
                best = Some((candidate, windowed));
            }
        }
        best.map(|(id, _)| id)
    }

    /// The least-loaded server (by windowed mean) that is not `home`, is
    /// alive and past any warm-up guard, has NIC headroom at its windowed
    /// load, is not itself spilling, and is not already the recipient of
    /// another server's spill. The last condition matters within a single
    /// tick: the estimator lags spill decisions by up to a window, so
    /// without it every overloaded home would pick the same idle server
    /// before any re-steered packet shows up in its samples.
    fn pick_recipient(&self, now: SimTime, home: ServerId) -> Option<ServerId> {
        let mut best: Option<(ServerId, f64)> = None;
        for (index, server) in self.servers.iter().enumerate() {
            let candidate = ServerId::from(index);
            if candidate == home
                || !self.health.eligible(candidate, now)
                || self.steering.fraction_of(candidate) > 0.0
                || self.steering.is_recipient(candidate)
            {
                continue;
            }
            let windowed = server.windowed_load();
            let utilisation = self.nic_utilisation_at(candidate, windowed);
            if utilisation >= self.config.recipient_headroom {
                continue;
            }
            if best.map_or(true, |(_, u)| utilisation < u) {
                best = Some((candidate, utilisation));
            }
        }
        best.map(|(id, _)| id)
    }

    /// The model-predicted SmartNIC utilisation of `server` at `load`.
    fn nic_utilisation_at(&self, server: ServerId, load: Gbps) -> f64 {
        let runtime = self.servers[server.index()].runtime();
        let chain = runtime.chain_model();
        let placement = runtime.placement();
        ResourceModel::new(&chain, &placement, load)
            .device_utilisation(Device::SmartNic)
            .value()
    }

    fn in_cooldown(&self, now: SimTime, server: ServerId) -> bool {
        matches!(
            self.last_scale_action[server.index()],
            Some(last) if now.duration_since(last) < self.config.scale_cooldown
        )
    }

    /// The machine-readable report of everything the fleet did so far.
    pub fn report(&self) -> FleetReport {
        let mut merged = pam_telemetry::LatencyHistogram::new();
        let mut totals = FleetTotals {
            scale_outs: self.scale_outs,
            scale_ins: self.scale_ins,
            scale_out_blocked: self.scale_out_blocked,
            control_steps: self.control_steps,
            resteered_packets: self.steering.stats().resteered_packets,
            handoff_flows: self.handoff_flows,
            handoff_bytes: self.handoff_bytes,
            handoff_us: self.handoff_us,
            server_crashes: self.health.total_crashes(),
            server_recoveries: self.health.total_recoveries(),
            fault_drops: self.fault_drops,
            ..FleetTotals::default()
        };
        let mut servers = Vec::with_capacity(self.servers.len());
        for server in &self.servers {
            let outcome = server.runtime().outcome();
            // fold from +0.0: an empty `sum()` is IEEE -0.0, which would
            // leak a "-0.0" into the JSON reports.
            let blackout_us: f64 = outcome
                .migrations
                .iter()
                .fold(0.0, |total, m| total + m.blackout().as_micros_f64());
            merged.merge(&server.runtime().registry().latency_histogram());
            totals.injected += outcome.injected;
            totals.delivered += outcome.delivered;
            totals.drops_overload += outcome.drops_overload;
            totals.drops_policy += outcome.drops_policy;
            totals.drops_migration += outcome.drops_migration;
            totals.migrations += outcome.migrations.len() as u64;
            totals.blackout_us += blackout_us;
            totals.aborted_migrations += outcome.aborted_migrations;
            servers.push(ServerReport {
                server: server.id().raw(),
                injected: outcome.injected,
                delivered: outcome.delivered,
                drops_overload: outcome.drops_overload,
                drops_policy: outcome.drops_policy,
                drops_migration: outcome.drops_migration,
                p50_us: outcome.p50_latency.as_micros_f64(),
                p99_us: outcome.p99_latency.as_micros_f64(),
                mean_us: outcome.mean_latency.as_micros_f64(),
                throughput_gbps: outcome.delivered_throughput.as_gbps(),
                migrations: outcome.migrations.len() as u64,
                blackout_us,
                spill_fraction: self.steering.fraction_of(server.id()),
                aborted_migrations: outcome.aborted_migrations,
                crashes: self.health.crashes(server.id()),
                recoveries: self.health.recoveries(server.id()),
            });
        }
        totals.p50_us = merged.p50().as_micros_f64();
        totals.p99_us = merged.p99().as_micros_f64();
        totals.mean_us = merged.mean().as_micros_f64();
        FleetReport { servers, totals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_core::{Placement, StrategyKind};
    use pam_nf::ServiceChainSpec;
    use pam_runtime::RuntimeConfig;
    use pam_traffic::{
        ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TrafficSchedule,
    };
    use pam_types::ByteSize;

    fn spec_with(schedule: TrafficSchedule, seed: u64) -> ServerSpec {
        ServerSpec {
            chain: ServiceChainSpec::figure1(),
            placement: Placement::figure1_initial(),
            runtime: RuntimeConfig::evaluation_default(),
            trace: TraceConfig {
                sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
                flows: FlowGeneratorConfig {
                    flow_count: 2000,
                    zipf_exponent: 1.0,
                    tcp_fraction: 0.8,
                },
                arrival: ArrivalProcess::Cbr,
                schedule,
                seed,
            },
        }
    }

    /// Server 0 takes a hopeless 3.9 Gbps burst (both devices saturated, the
    /// strategy answers ScaleOut) and then goes almost quiet; server 1 idles
    /// at 0.5 Gbps throughout.
    fn hopeless_fleet(strategy: StrategyKind) -> Fleet {
        let hot = TrafficSchedule::from_phases(vec![
            pam_traffic::Phase::new(Gbps::new(3.9), SimDuration::from_millis(10)),
            pam_traffic::Phase::new(Gbps::new(0.3), SimDuration::from_millis(20)),
        ]);
        let cold = TrafficSchedule::constant(Gbps::new(0.5), SimDuration::from_millis(30));
        Fleet::new(
            vec![spec_with(hot, 11), spec_with(cold, 12)],
            FleetConfig::with_strategy(strategy),
        )
        .unwrap()
    }

    #[test]
    fn hopeless_overload_scales_out_to_the_idle_server_and_back_in() {
        let mut fleet = hopeless_fleet(StrategyKind::Pam);
        let ticks = fleet.run(SimTime::from_millis(30));
        assert_eq!(ticks, 30, "1 ms cadence over 30 ms");
        assert!(fleet.scale_outs() > 0, "the ladder acted on ScaleOut");
        let stats = fleet.steering().stats();
        assert!(stats.resteered_packets > 0, "flows actually moved");
        // Once the burst passed and the window drained, flows walked home.
        assert!(fleet.scale_ins() > 0, "scale-in after the load receded");
        assert_eq!(fleet.steering().fraction_of(ServerId::new(0)), 0.0);
        // Both servers saw traffic; the idle server absorbed the spill.
        let report = fleet.report();
        assert!(report.servers[1].injected > 0);
        assert!(report.totals.resteered_packets == stats.resteered_packets);
        assert!(report.totals.control_steps == 30);
    }

    #[test]
    fn scale_out_disabled_keeps_every_flow_home() {
        let mut fleet = hopeless_fleet(StrategyKind::Pam);
        fleet.config.scale_out_enabled = false;
        fleet.run(SimTime::from_millis(30));
        assert_eq!(fleet.scale_outs(), 0);
        assert_eq!(fleet.steering().stats().resteered_packets, 0);
        // The overload still shows up as drops on the hot server.
        let report = fleet.report();
        assert!(report.servers[0].drops_overload > 0);
        assert_eq!(report.servers[1].drops_overload, 0);
    }

    #[test]
    fn no_migration_baseline_takes_no_actions() {
        let mut fleet = hopeless_fleet(StrategyKind::Original);
        fleet.run(SimTime::from_millis(30));
        assert_eq!(fleet.scale_outs(), 0);
        assert_eq!(fleet.report().totals.migrations, 0);
        assert!(fleet.log().iter().all(|r| r.action == FleetAction::None));
    }

    #[test]
    fn moderate_overload_is_handled_locally_without_scale_out() {
        // 2.2 Gbps overloads the NIC but PAM relieves it by migrating the
        // Logger — rung 1 of the ladder suffices, rung 2 never fires.
        let schedule = TrafficSchedule::step_overload(
            Gbps::new(1.5),
            SimDuration::from_millis(6),
            Gbps::new(2.2),
            SimDuration::from_millis(14),
        );
        let mut fleet = Fleet::new(
            vec![
                spec_with(schedule, 21),
                spec_with(
                    TrafficSchedule::constant(Gbps::new(1.0), SimDuration::from_millis(20)),
                    22,
                ),
            ],
            FleetConfig::with_strategy(StrategyKind::Pam),
        )
        .unwrap();
        fleet.run(SimTime::from_millis(20));
        let report = fleet.report();
        assert!(report.totals.migrations >= 1, "local migration happened");
        assert_eq!(fleet.scale_outs(), 0, "no cross-server action needed");
        assert!(report.totals.blackout_us > 0.0);
    }

    #[test]
    fn top_up_is_blocked_once_the_sticky_recipient_loses_headroom() {
        // Server 0 is hopeless for a long stretch; server 1 runs at 1.2 Gbps
        // (utilisation ~0.65, just under the 0.7 recipient headroom), so it
        // qualifies for the first spill but any spilled traffic pushes it
        // well past the bar. Later top-up attempts must be blocked instead
        // of raising the spill to max on a recipient that no longer
        // qualifies.
        let hot = TrafficSchedule::constant(Gbps::new(3.9), SimDuration::from_millis(12));
        let warm = TrafficSchedule::constant(Gbps::new(1.2), SimDuration::from_millis(12));
        let mut fleet = Fleet::new(
            vec![spec_with(hot, 41), spec_with(warm, 42)],
            FleetConfig::with_strategy(StrategyKind::Pam),
        )
        .unwrap();
        fleet.run(SimTime::from_millis(12));
        assert_eq!(
            fleet.steering().fraction_of(ServerId::new(0)),
            fleet.config().spill_step,
            "the spill stopped at one step"
        );
        assert!(
            fleet
                .log()
                .iter()
                .any(|r| r.action == FleetAction::ScaleOutBlocked),
            "later top-ups were blocked, not granted"
        );
    }

    #[test]
    fn concurrent_hopeless_overloads_do_not_dogpile_one_recipient() {
        // Three servers slammed at once, one idle: the idle server must end
        // up the recipient of at most one spill — later homes are blocked
        // rather than allowed to pile onto a recipient whose windowed load
        // does not yet reflect the spill.
        let hot = TrafficSchedule::from_phases(vec![
            pam_traffic::Phase::new(Gbps::new(3.8), SimDuration::from_millis(12)),
            pam_traffic::Phase::new(Gbps::new(0.3), SimDuration::from_millis(8)),
        ]);
        let idle = TrafficSchedule::constant(Gbps::new(0.5), SimDuration::from_millis(20));
        let mut fleet = Fleet::new(
            vec![
                spec_with(hot.clone(), 31),
                spec_with(hot.clone(), 32),
                spec_with(hot, 33),
                spec_with(idle, 34),
            ],
            FleetConfig::with_strategy(StrategyKind::Pam),
        )
        .unwrap();
        fleet.run(SimTime::from_millis(20));
        let recipient = ServerId::new(3);
        let spills_into_idle = (0..3)
            .filter(|&i| {
                fleet
                    .steering()
                    .spill_of(ServerId::new(i))
                    .is_some_and(|s| s.to == recipient)
            })
            .count();
        assert!(
            spills_into_idle <= 1,
            "{spills_into_idle} homes spilled into the single idle server"
        );
        // The homes that could not find a recipient were blocked, not lost.
        assert!(fleet.scale_outs() > 0);
        assert!(
            fleet
                .log()
                .iter()
                .any(|r| r.action == FleetAction::ScaleOutBlocked),
            "the surplus homes must report ScaleOutBlocked"
        );
    }

    #[test]
    fn scale_out_ships_state_over_the_inter_server_link() {
        let mut fleet = hopeless_fleet(StrategyKind::Pam);
        fleet.run(SimTime::from_millis(30));
        assert!(fleet.scale_outs() > 0);
        let report = fleet.report();
        assert!(
            report.totals.handoff_flows > 0,
            "spilled flows hand their state off"
        );
        assert!(report.totals.handoff_bytes >= report.totals.handoff_flows * 64);
        // Each handoff pays at least the link's one-way latency (40 us).
        assert!(report.totals.handoff_us >= 40.0 * fleet.scale_outs() as f64);
        // No scale-out → no handoff.
        let mut idle = hopeless_fleet(StrategyKind::Original);
        idle.run(SimTime::from_millis(30));
        assert_eq!(idle.report().totals.handoff_flows, 0);
        assert_eq!(idle.report().totals.handoff_us, 0.0);
    }

    #[test]
    fn run_can_be_resumed_without_double_scheduling() {
        let mut whole = hopeless_fleet(StrategyKind::Pam);
        whole.run(SimTime::from_millis(30));
        let mut split = hopeless_fleet(StrategyKind::Pam);
        split.run(SimTime::from_millis(13));
        split.run(SimTime::from_millis(30));
        assert_eq!(
            serde_json::to_string(&whole.report()).unwrap(),
            serde_json::to_string(&split.report()).unwrap(),
            "split runs replay identically"
        );
    }

    use pam_sim::{FaultEvent, FaultKind, FaultPlan};

    fn crash_recover_plan(server: u64, crash_ms: u64, recover_ms: u64) -> FaultPlan {
        FaultPlan::new(vec![
            FaultEvent {
                at: SimTime::from_millis(crash_ms),
                kind: FaultKind::ServerCrash {
                    server: ServerId::new(server),
                },
            },
            FaultEvent {
                at: SimTime::from_millis(recover_ms),
                kind: FaultKind::ServerRecover {
                    server: ServerId::new(server),
                },
            },
        ])
    }

    #[test]
    fn fault_plan_must_be_installed_before_start_and_must_validate() {
        let mut fleet = hopeless_fleet(StrategyKind::Pam);
        // Out-of-range server index is rejected.
        assert!(fleet.set_fault_plan(crash_recover_plan(7, 1, 2)).is_err());
        assert!(fleet.set_fault_plan(crash_recover_plan(0, 5, 15)).is_ok());
        fleet.run(SimTime::from_millis(1));
        // Too late: the queue already started.
        assert!(fleet.set_fault_plan(crash_recover_plan(1, 5, 15)).is_err());
    }

    #[test]
    fn crash_black_holes_ingress_and_fails_over_to_the_survivor() {
        // Server 0 crashes at 5 ms mid-burst and recovers at 15 ms. Its
        // flows must fail over to server 1 at the crash instant (no drop
        // window), and the ladder must walk them home after the warm-up.
        let mut fleet = hopeless_fleet(StrategyKind::Pam);
        fleet.set_fault_plan(crash_recover_plan(0, 5, 15)).unwrap();
        fleet.run(SimTime::from_millis(40));
        let report = fleet.report();
        assert_eq!(report.totals.server_crashes, 1);
        assert_eq!(report.totals.server_recoveries, 1);
        assert_eq!(report.servers[0].crashes, 1);
        assert_eq!(report.servers[0].recoveries, 1);
        assert_eq!(report.servers[1].crashes, 0);
        assert_eq!(
            report.totals.fault_drops, 0,
            "the survivor absorbed every re-steered packet"
        );
        assert!(
            report.totals.resteered_packets > 0,
            "failover actually moved traffic"
        );
        // After recovery + warm-up the scale-in ladder walked the forced
        // spill back down (run long enough for the cooldown-spaced steps).
        assert_eq!(fleet.steering().fraction_of(ServerId::new(0)), 0.0);
        assert!(
            fleet.scale_ins() >= 4,
            "a full fraction walks home in spill_step steps"
        );
        // Nothing already admitted was lost: per-server packet conservation
        // holds on both servers after the final drain.
        for server in &report.servers {
            assert_eq!(
                server.injected,
                server.delivered
                    + server.drops_overload
                    + server.drops_policy
                    + server.drops_migration,
                "server {} leaked admitted packets",
                server.server
            );
        }
    }

    #[test]
    fn crash_with_no_survivor_black_holes_packets_until_recovery() {
        // A single-server fleet has nowhere to fail over: packets routed to
        // the dead server are counted as fault drops, and service resumes
        // after recovery.
        let build = || {
            Fleet::new(
                vec![spec_with(
                    TrafficSchedule::constant(Gbps::new(0.5), SimDuration::from_millis(30)),
                    11,
                )],
                FleetConfig::with_strategy(StrategyKind::Pam),
            )
            .unwrap()
        };
        let mut fleet = build();
        fleet.set_fault_plan(crash_recover_plan(0, 5, 15)).unwrap();
        fleet.run(SimTime::from_millis(40));
        let report = fleet.report();
        assert!(report.totals.fault_drops > 0, "the black hole was real");
        assert_eq!(report.totals.server_crashes, 1);
        // Packets admitted before the crash all completed (ingress
        // black-hole, not state loss)...
        assert_eq!(
            report.totals.injected,
            report.totals.delivered
                + report.totals.drops_overload
                + report.totals.drops_policy
                + report.totals.drops_migration
        );
        // ...and recovery restored service: admissions well beyond what a
        // crash-with-no-recovery run of the same scenario ever admits.
        let mut unrecovered = build();
        unrecovered
            .set_fault_plan(FaultPlan::new(vec![FaultEvent {
                at: SimTime::from_millis(5),
                kind: FaultKind::ServerCrash {
                    server: ServerId::new(0),
                },
            }]))
            .unwrap();
        unrecovered.run(SimTime::from_millis(40));
        assert!(
            report.totals.injected > unrecovered.report().totals.injected * 3,
            "recovery must re-admit traffic (got {} vs {} unrecovered)",
            report.totals.injected,
            unrecovered.report().totals.injected
        );
    }

    #[test]
    fn crash_aborts_an_in_flight_precopy_through_the_target_crash_arc() {
        // Find a deterministic instant where server 0 has a pre-copy in
        // flight (the moderate overload triggers a local PAM migration),
        // then replay the same fleet with a crash pinned to that instant.
        let schedule = || {
            TrafficSchedule::step_overload(
                Gbps::new(1.5),
                SimDuration::from_millis(6),
                Gbps::new(2.2),
                SimDuration::from_millis(14),
            )
        };
        // The evaluation default migrates stop-and-copy (atomic, nothing to
        // crash into); run this fleet's migrations in pre-copy mode so a
        // staged target exists mid-flight.
        let build = || {
            use pam_runtime::{MigrationConfig, MigrationMode};
            let mut spec = spec_with(schedule(), 21);
            spec.runtime = RuntimeConfig::evaluation_default().with_migration(MigrationConfig {
                mode: MigrationMode::PreCopy,
                ..MigrationConfig::default()
            });
            Fleet::new(vec![spec], FleetConfig::with_strategy(StrategyKind::Pam)).unwrap()
        };
        // Pre-copy rounds complete in tens of microseconds, so probe finely.
        let mut probe = build();
        let mut at = SimTime::ZERO;
        while !probe.servers()[0].runtime().pre_copy_in_progress() {
            at += SimDuration::from_micros(5);
            assert!(
                at <= SimTime::from_millis(20),
                "no pre-copy migration ever started"
            );
            probe.run(at);
        }
        // The migration may have been started by the control tick at `at`
        // itself, and a fault scheduled at `at` would sort *before* that
        // tick (fault events are queued at start). Crash strictly after the
        // probe point instead, checking the pre-copy is still in flight.
        let crash_at = at + SimDuration::from_micros(1);
        probe.run(crash_at);
        assert!(
            probe.servers()[0].runtime().pre_copy_in_progress(),
            "the staged migration must still be in flight at the crash instant"
        );
        let mut fleet = build();
        fleet
            .set_fault_plan(FaultPlan::new(vec![FaultEvent {
                at: crash_at,
                kind: FaultKind::ServerCrash {
                    server: ServerId::new(0),
                },
            }]))
            .unwrap();
        fleet.run(SimTime::from_millis(20));
        assert_eq!(
            fleet.servers()[0].runtime().target_crashes(),
            1,
            "the crash aborted the staged migration via TargetCrash"
        );
        let report = fleet.report();
        assert!(report.totals.aborted_migrations >= 1);
        assert_eq!(
            report.servers[0].aborted_migrations,
            report.totals.aborted_migrations
        );
        // The abort lost nothing that was admitted: conservation holds.
        assert_eq!(
            report.totals.injected,
            report.totals.delivered
                + report.totals.drops_overload
                + report.totals.drops_policy
                + report.totals.drops_migration
        );
    }

    #[test]
    fn link_faults_delay_but_never_lose_traffic_and_replay_identically() {
        let plan = || {
            FaultPlan::new(vec![
                FaultEvent {
                    at: SimTime::from_millis(3),
                    kind: FaultKind::LinkFlap {
                        server: ServerId::new(0),
                        down_for: SimDuration::from_micros(600),
                    },
                },
                // Overlapping flap: extends the outage; only the later
                // restore may recover the link.
                FaultEvent {
                    at: SimTime::from_micros(3_300),
                    kind: FaultKind::LinkFlap {
                        server: ServerId::new(0),
                        down_for: SimDuration::from_micros(800),
                    },
                },
                FaultEvent {
                    at: SimTime::from_millis(8),
                    kind: FaultKind::CapacitySwing {
                        server: ServerId::new(1),
                        factor: 0.4,
                        period: SimDuration::from_millis(2),
                    },
                },
            ])
        };
        // Traffic ends at 30 ms; run past it so in-flight packets drain
        // before asserting conservation.
        let mut whole = hopeless_fleet(StrategyKind::Pam);
        whole.set_fault_plan(plan()).unwrap();
        whole.run(SimTime::from_millis(32));
        let report = whole.report();
        assert_eq!(report.totals.server_crashes, 0);
        assert_eq!(report.totals.fault_drops, 0);
        assert_eq!(
            report.totals.injected,
            report.totals.delivered
                + report.totals.drops_overload
                + report.totals.drops_policy
                + report.totals.drops_migration,
            "link faults delay packets, they never lose them"
        );
        // Resumable mid-outage: splitting the run across the flap window
        // replays byte-identically.
        let mut split = hopeless_fleet(StrategyKind::Pam);
        split.set_fault_plan(plan()).unwrap();
        split.run(SimTime::from_micros(3_500));
        split.run(SimTime::from_millis(32));
        assert_eq!(
            serde_json::to_string(&whole.report()).unwrap(),
            serde_json::to_string(&split.report()).unwrap(),
            "split faulted runs replay identically"
        );
    }
}
