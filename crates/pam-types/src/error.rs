//! The shared error type.
//!
//! Most operations in the workspace are infallible by construction (the
//! simulator and the algorithms work on validated in-memory structures), so
//! the error enum stays small: malformed packets, invalid configuration,
//! unknown identifiers and infeasible migration plans.

use std::fmt;

use crate::id::{InstanceId, NfId};

/// Errors shared across the PAM workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PamError {
    /// A packet buffer was too short or otherwise malformed for the requested
    /// wire format.
    Malformed {
        /// Which protocol layer rejected the buffer.
        layer: &'static str,
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// A checksum did not verify.
    ChecksumMismatch {
        /// Which protocol layer detected the mismatch.
        layer: &'static str,
    },
    /// A configuration value was out of its valid range.
    InvalidConfig(String),
    /// A vNF position referenced by an operation does not exist in the chain.
    UnknownNf(NfId),
    /// No capacity profile is registered for a vNF kind (the kind's name is
    /// carried as a string so `pam-types` stays independent of `pam-nf`).
    MissingProfile(String),
    /// A runtime instance referenced by an operation does not exist.
    UnknownInstance(InstanceId),
    /// The requested migration or placement is infeasible under the resource
    /// model (e.g. it would overload the CPU — Eq. 2 of the poster).
    Infeasible(String),
    /// Both the SmartNIC and the CPU are overloaded; the operator must scale
    /// out to a new instance instead of migrating (poster §2, final case).
    ScaleOutRequired,
    /// An operation was attempted in a state that does not allow it
    /// (e.g. migrating an instance that is already being migrated).
    InvalidState(String),
}

impl fmt::Display for PamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PamError::Malformed { layer, reason } => {
                write!(f, "malformed {layer} packet: {reason}")
            }
            PamError::ChecksumMismatch { layer } => write!(f, "{layer} checksum mismatch"),
            PamError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PamError::UnknownNf(id) => write!(f, "unknown vNF position {id}"),
            PamError::MissingProfile(kind) => {
                write!(f, "no capacity profile registered for {kind}")
            }
            PamError::UnknownInstance(id) => write!(f, "unknown vNF instance {id}"),
            PamError::Infeasible(msg) => write!(f, "infeasible operation: {msg}"),
            PamError::ScaleOutRequired => {
                write!(
                    f,
                    "both SmartNIC and CPU are overloaded: scale-out required"
                )
            }
            PamError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for PamError {}

impl PamError {
    /// Convenience constructor for [`PamError::Malformed`].
    pub fn malformed(layer: &'static str, reason: impl Into<String>) -> Self {
        PamError::Malformed {
            layer,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`PamError::InvalidConfig`].
    pub fn config(reason: impl Into<String>) -> Self {
        PamError::InvalidConfig(reason.into())
    }

    /// Convenience constructor for [`PamError::MissingProfile`].
    pub fn missing_profile(kind: impl Into<String>) -> Self {
        PamError::MissingProfile(kind.into())
    }

    /// Convenience constructor for [`PamError::Infeasible`].
    pub fn infeasible(reason: impl Into<String>) -> Self {
        PamError::Infeasible(reason.into())
    }

    /// Convenience constructor for [`PamError::InvalidState`].
    pub fn state(reason: impl Into<String>) -> Self {
        PamError::InvalidState(reason.into())
    }
}

/// Result alias using [`PamError`].
pub type Result<T> = std::result::Result<T, PamError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = PamError::malformed("ipv4", "total length exceeds buffer");
        assert_eq!(
            e.to_string(),
            "malformed ipv4 packet: total length exceeds buffer"
        );
        assert_eq!(
            PamError::ChecksumMismatch { layer: "tcp" }.to_string(),
            "tcp checksum mismatch"
        );
        assert_eq!(
            PamError::UnknownNf(NfId::new(4)).to_string(),
            "unknown vNF position nf4"
        );
        assert_eq!(
            PamError::UnknownInstance(InstanceId::new(2)).to_string(),
            "unknown vNF instance inst2"
        );
        assert!(PamError::ScaleOutRequired.to_string().contains("scale-out"));
        assert_eq!(
            PamError::missing_profile("Monitor").to_string(),
            "no capacity profile registered for Monitor"
        );
        assert!(PamError::config("bad").to_string().contains("bad"));
        assert!(PamError::infeasible("cpu full")
            .to_string()
            .contains("cpu full"));
        assert!(PamError::state("busy").to_string().contains("busy"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&PamError::ScaleOutRequired);
    }

    #[test]
    fn result_alias_works() {
        fn f(ok: bool) -> Result<u32> {
            if ok {
                Ok(1)
            } else {
                Err(PamError::ScaleOutRequired)
            }
        }
        assert_eq!(f(true).unwrap(), 1);
        assert!(f(false).is_err());
    }
}
