//! Simulation time.
//!
//! The discrete-event simulator and every latency measurement in the
//! workspace use an integer nanosecond clock: [`SimTime`] is an instant on
//! that clock and [`SimDuration`] the difference between two instants.
//! Integer nanoseconds keep event ordering exact (no floating-point ties) and
//! make runs bit-for-bit reproducible for a given seed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::units::{ByteSize, Gbps};

/// An instant on the simulation clock, in nanoseconds since the start of the
/// simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for events that are never scheduled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds since simulation start,
    /// saturating at [`SimTime::MAX`].
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros.saturating_mul(1_000))
    }

    /// Creates an instant from milliseconds since simulation start,
    /// saturating at [`SimTime::MAX`].
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis.saturating_mul(1_000_000))
    }

    /// Creates an instant from seconds since simulation start.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (fractional).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

/// Saturates at [`SimTime::MAX`]: the "never" sentinel stays at `MAX`
/// instead of wrapping back to the start of the simulation, so an event
/// offset from an unscheduled instant remains unscheduled. Use
/// [`SimTime::checked_add`] to detect the overflow instead.
impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulation time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds, saturating at `u64::MAX` ns.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Creates a duration from milliseconds, saturating at `u64::MAX` ns.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Creates a duration from whole seconds, saturating at `u64::MAX` ns.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// Creates a duration from fractional seconds (rounded to nanoseconds).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Creates a duration from fractional microseconds (rounded to nanoseconds).
    pub fn from_micros_f64(micros: f64) -> Self {
        SimDuration((micros.max(0.0) * 1e3).round() as u64)
    }

    /// The time needed to serialise `size` bytes onto a link of rate `rate`.
    ///
    /// Returns [`SimDuration::ZERO`] for a zero rate rather than dividing by
    /// zero; callers treat a zero-rate link as infinitely fast (pure latency).
    pub fn transmission(size: ByteSize, rate: Gbps) -> Self {
        if rate.as_gbps() <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(size.as_bits() as f64 / rate.as_bits_per_sec())
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (fractional).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds in this duration (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in this duration (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by an integer factor.
    pub const fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2} us", self.as_micros_f64())
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

/// Saturates at `u64::MAX` nanoseconds rather than wrapping: a sum of
/// near-sentinel spans stays "effectively infinite" instead of collapsing
/// to a short duration.
impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs.max(0.0)).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_nanos(1_000_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(
            SimDuration::from_micros_f64(22.5),
            SimDuration::from_nanos(22_500)
        );
    }

    #[test]
    fn time_duration_arithmetic() {
        let t0 = SimTime::from_micros(100);
        let d = SimDuration::from_micros(25);
        let t1 = t0 + d;
        assert_eq!(t1.as_nanos(), 125_000);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.duration_since(t0), d);
        // saturating behaviour when "earlier" is later
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t0 - d, SimTime::from_micros(75));
    }

    #[test]
    fn transmission_time_matches_line_rate() {
        // 1500 B at 10 Gbps = 1.2 microseconds.
        let d = SimDuration::transmission(ByteSize::bytes(1500), Gbps::new(10.0));
        assert_eq!(d, SimDuration::from_nanos(1200));
        // 64 B at 10 Gbps = 51.2 ns.
        let d = SimDuration::transmission(ByteSize::bytes(64), Gbps::new(10.0));
        assert_eq!(d, SimDuration::from_nanos(51));
        // Zero rate means "no serialisation delay".
        assert_eq!(
            SimDuration::transmission(ByteSize::bytes(1500), Gbps::ZERO),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3u64, SimDuration::from_micros(30));
        assert_eq!(d * 0.5, SimDuration::from_micros(5));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.saturating_mul(4), SimDuration::from_micros(40));
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration::from_micros(30));
    }

    #[test]
    fn saturating_subtraction() {
        let a = SimDuration::from_micros(5);
        let b = SimDuration::from_micros(9);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        let mut c = a;
        c -= b;
        assert_eq!(c, SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(950)), "950 ns");
        assert_eq!(format!("{}", SimDuration::from_micros(22)), "22.00 us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000 ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000 s");
        assert_eq!(format!("{}", SimTime::from_micros(22)), "t=22.00 us");
    }

    #[test]
    fn std_duration_conversion() {
        let d = SimDuration::from_millis(12);
        let std: std::time::Duration = d.into();
        assert_eq!(std.as_millis(), 12);
        assert_eq!(SimDuration::from(std), d);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_nanos(3).max(SimDuration::from_nanos(7)),
            SimDuration::from_nanos(7)
        );
        assert!(SimDuration::ZERO.is_zero());
        assert_eq!(SimTime::MAX.as_nanos(), u64::MAX);
    }

    #[test]
    fn near_max_arithmetic_saturates_instead_of_wrapping() {
        // The "never scheduled" sentinel must stay at MAX when offset.
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(30), SimTime::MAX);
        let mut t = SimTime::from_nanos(u64::MAX - 5);
        t += SimDuration::from_nanos(100);
        assert_eq!(t, SimTime::MAX);

        // Durations saturate as well, in both Add and Mul.
        let near = SimDuration::from_nanos(u64::MAX - 1);
        assert_eq!(near + near, SimDuration::from_nanos(u64::MAX));
        let mut d = near;
        d += SimDuration::from_nanos(1_000);
        assert_eq!(d, SimDuration::from_nanos(u64::MAX));
        assert_eq!(near * 3u64, SimDuration::from_nanos(u64::MAX));

        // Unit constructors clamp rather than truncating the high bits.
        assert_eq!(SimTime::from_micros(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_millis(u64::MAX), SimTime::MAX);
        assert_eq!(
            SimDuration::from_micros(u64::MAX),
            SimDuration::from_nanos(u64::MAX)
        );
        assert_eq!(
            SimDuration::from_secs(u64::MAX),
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn transmission_of_huge_payloads_does_not_wrap() {
        // u64::MAX bytes is ~2^64 * 8 bits; `as_bits` must clamp instead of
        // wrapping to a tiny value, so the serialisation time stays huge.
        let d = SimDuration::transmission(ByteSize::bytes(u64::MAX), Gbps::new(100.0));
        assert!(
            d > SimDuration::from_secs(1_000_000),
            "near-MAX payload produced a wrapped-short serialisation time: {d}"
        );
        // And a sane payload is unaffected by the clamping fix.
        assert_eq!(
            SimDuration::transmission(ByteSize::bytes(1500), Gbps::new(10.0)),
            SimDuration::from_nanos(1200)
        );
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_nanos(5)),
            Some(SimTime::from_nanos(5))
        );
    }
}
