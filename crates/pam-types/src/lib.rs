//! Shared vocabulary types for the PAM workspace.
//!
//! Every other crate in the workspace builds on the small set of concepts
//! defined here:
//!
//! * [`units`] — throughput and size units ([`Gbps`], [`ByteSize`]) with the
//!   arithmetic the resource model needs.
//! * [`time`] — the simulation clock ([`SimTime`]) and durations
//!   ([`SimDuration`]), stored as integer nanoseconds so discrete-event
//!   ordering is exact and reproducible.
//! * [`id`] — strongly typed identifiers for vNFs, instances, chains, flows
//!   and devices.
//! * [`device`] — where things run: the [`Device`] (SmartNIC or host CPU),
//!   chain [`Endpoint`]s (the physical wire or the host), and the
//!   [`Side`] abstraction PAM's border analysis is defined over.
//! * [`error`] — the shared [`PamError`] type.
//!
//! The crate has no dependencies beyond `serde` and forbids `unsafe` code.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod id;
pub mod time;
pub mod units;

pub use device::{Device, Endpoint, Hop, Side};
pub use error::{PamError, Result};
pub use id::{ChainId, DeviceId, FlowId, InstanceId, InstanceIdGen, NfId, ServerId};
pub use time::{SimDuration, SimTime};
pub use units::{ByteSize, Gbps, Ratio};
