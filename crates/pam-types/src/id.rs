//! Strongly typed identifiers.
//!
//! The workspace distinguishes between a *vNF position in a chain* ([`NfId`]),
//! a *running instance* of that vNF on some device ([`InstanceId`]), the
//! *chain* itself ([`ChainId`]), individual *flows* ([`FlowId`]) and
//! *devices* ([`DeviceId`]). Using distinct newtypes prevents the classic
//! "passed the chain index where the instance id was expected" bug family.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw index behind the identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                $name(raw as u64)
            }
        }
    };
}

define_id!(
    /// Identifies a vNF *position* within a service chain (hop index).
    NfId,
    "nf"
);
define_id!(
    /// Identifies a running vNF *instance* placed on a concrete device.
    InstanceId,
    "inst"
);
define_id!(
    /// Identifies a service chain.
    ChainId,
    "chain"
);
define_id!(
    /// Identifies a network flow (derived from the 5-tuple hash).
    FlowId,
    "flow"
);
define_id!(
    /// Identifies a compute device (a SmartNIC or a CPU socket).
    DeviceId,
    "dev"
);
define_id!(
    /// Identifies a server (one SmartNIC + CPU pair) within a fleet.
    ServerId,
    "srv"
);

impl NfId {
    /// The hop index this id refers to, as a `usize` for indexing chain
    /// vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl ServerId {
    /// The fleet index this id refers to, for indexing server vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A monotonically increasing generator for [`InstanceId`]s.
///
/// The runtime creates new instances during scale-out and migration; the
/// generator is shared between the runtime and the orchestrator so ids never
/// collide within one deployment.
#[derive(Debug, Default)]
pub struct InstanceIdGen {
    next: AtomicU64,
}

impl InstanceIdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a generator starting at `first`.
    pub fn starting_at(first: u64) -> Self {
        InstanceIdGen {
            next: AtomicU64::new(first),
        }
    }

    /// Allocates the next unique instance id.
    pub fn next_id(&self) -> InstanceId {
        InstanceId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(NfId::new(3).to_string(), "nf3");
        assert_eq!(InstanceId::new(7).to_string(), "inst7");
        assert_eq!(ChainId::new(0).to_string(), "chain0");
        assert_eq!(FlowId::new(42).to_string(), "flow42");
        assert_eq!(DeviceId::new(1).to_string(), "dev1");
    }

    #[test]
    fn conversions_and_raw_round_trip() {
        let id = NfId::from(5usize);
        assert_eq!(id.raw(), 5);
        assert_eq!(id.index(), 5);
        assert_eq!(NfId::from(5u64), id);
    }

    #[test]
    fn ids_of_different_types_are_distinct_types() {
        // This is a compile-time property; here we simply exercise Ord/Hash.
        let mut set = HashSet::new();
        set.insert(NfId::new(1));
        set.insert(NfId::new(1));
        set.insert(NfId::new(2));
        assert_eq!(set.len(), 2);
        assert!(NfId::new(1) < NfId::new(2));
    }

    #[test]
    fn instance_id_generator_is_monotonic_and_unique() {
        let gen = InstanceIdGen::new();
        let ids: Vec<_> = (0..100).map(|_| gen.next_id()).collect();
        let unique: HashSet<_> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
        assert!(ids.windows(2).all(|w| w[0].raw() < w[1].raw()));
    }

    #[test]
    fn instance_id_generator_starting_offset() {
        let gen = InstanceIdGen::starting_at(10);
        assert_eq!(gen.next_id(), InstanceId::new(10));
        assert_eq!(gen.next_id(), InstanceId::new(11));
    }

    #[test]
    fn serde_round_trip() {
        let id = FlowId::new(9);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "9");
        assert_eq!(serde_json::from_str::<FlowId>(&json).unwrap(), id);
    }
}
