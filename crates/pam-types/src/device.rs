//! Devices, endpoints and chain hops.
//!
//! PAM's whole contribution is about *where* each vNF of a service chain
//! runs: on the SmartNIC's NPU or on the host CPU, with a PCIe crossing paid
//! every time consecutive hops sit on different sides. This module defines
//! that vocabulary:
//!
//! * [`Device`] — the two compute devices of a server in the paper's setting.
//! * [`Endpoint`] — where a chain begins and ends: the physical wire (NIC
//!   port) or the host (a VM / application / kernel path on the CPU side).
//! * [`Side`] — the PCIe side of either of the above; border identification
//!   and crossing counting operate purely on sides.
//! * [`Hop`] — one element of a packet's path (endpoint or placed vNF).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::id::NfId;

/// A compute device inside the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Device {
    /// The SmartNIC's network processing unit (e.g. a Netronome Agilio CX).
    SmartNic,
    /// The host CPU (e.g. Intel Xeon cores running DPDK-based vNFs).
    Cpu,
}

impl Device {
    /// Both devices, in a fixed order (useful for iteration and reporting).
    pub const ALL: [Device; 2] = [Device::SmartNic, Device::Cpu];

    /// The other device: CPU for the SmartNIC and vice versa. Migration in a
    /// two-device server always targets the opposite device.
    pub const fn other(self) -> Device {
        match self {
            Device::SmartNic => Device::Cpu,
            Device::Cpu => Device::SmartNic,
        }
    }

    /// The PCIe side this device sits on.
    pub const fn side(self) -> Side {
        match self {
            Device::SmartNic => Side::Nic,
            Device::Cpu => Side::Host,
        }
    }

    /// Short label used in tables and logs (`NIC` / `CPU`).
    pub const fn label(self) -> &'static str {
        match self {
            Device::SmartNic => "NIC",
            Device::Cpu => "CPU",
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Device::SmartNic => write!(f, "SmartNIC"),
            Device::Cpu => write!(f, "CPU"),
        }
    }
}

/// Where a service chain begins or ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The physical port of the NIC: traffic arrives from / departs to the
    /// wire without crossing PCIe.
    Wire,
    /// The host side: traffic originates from or is consumed by an
    /// application, VM or the kernel network stack on the CPU.
    Host,
}

impl Endpoint {
    /// The PCIe side of the endpoint.
    pub const fn side(self) -> Side {
        match self {
            Endpoint::Wire => Side::Nic,
            Endpoint::Host => Side::Host,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Wire => write!(f, "wire"),
            Endpoint::Host => write!(f, "host"),
        }
    }
}

/// The PCIe side of a hop: either on the NIC or on the host.
///
/// A packet pays one PCIe crossing every time two consecutive hops have
/// different sides. Border vNFs (poster §2, Step 1) are exactly the
/// NIC-resident vNFs with a host-side neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// On the SmartNIC side of the PCIe link.
    Nic,
    /// On the host (CPU) side of the PCIe link.
    Host,
}

impl Side {
    /// True when moving from `self` to `next` crosses the PCIe link.
    pub const fn crosses_to(self, next: Side) -> bool {
        !matches!(
            (self, next),
            (Side::Nic, Side::Nic) | (Side::Host, Side::Host)
        )
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Nic => write!(f, "nic-side"),
            Side::Host => write!(f, "host-side"),
        }
    }
}

/// One hop of a packet's path through the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hop {
    /// The chain's ingress or egress endpoint.
    Endpoint(Endpoint),
    /// A vNF placed on a device.
    Vnf {
        /// Which chain position this hop is.
        nf: NfId,
        /// The device the vNF currently runs on.
        device: Device,
    },
}

impl Hop {
    /// The PCIe side of this hop.
    pub const fn side(self) -> Side {
        match self {
            Hop::Endpoint(e) => e.side(),
            Hop::Vnf { device, .. } => device.side(),
        }
    }

    /// The vNF id if this hop is a vNF.
    pub const fn nf(self) -> Option<NfId> {
        match self {
            Hop::Vnf { nf, .. } => Some(nf),
            Hop::Endpoint(_) => None,
        }
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hop::Endpoint(e) => write!(f, "[{e}]"),
            Hop::Vnf { nf, device } => write!(f, "{nf}@{}", device.label()),
        }
    }
}

/// Counts the PCIe crossings along a path of hops.
///
/// This is the quantity PAM minimises implicitly: migrating a *border* vNF
/// leaves the crossing count unchanged while migrating an interior vNF adds
/// two crossings (poster Figure 1b vs 1c).
pub fn pcie_crossings(path: &[Hop]) -> usize {
    path.windows(2)
        .filter(|w| w[0].side().crosses_to(w[1].side()))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vnf(i: u64, d: Device) -> Hop {
        Hop::Vnf {
            nf: NfId::new(i),
            device: d,
        }
    }

    #[test]
    fn device_other_and_side() {
        assert_eq!(Device::SmartNic.other(), Device::Cpu);
        assert_eq!(Device::Cpu.other(), Device::SmartNic);
        assert_eq!(Device::SmartNic.side(), Side::Nic);
        assert_eq!(Device::Cpu.side(), Side::Host);
        assert_eq!(Device::ALL.len(), 2);
    }

    #[test]
    fn endpoint_sides() {
        assert_eq!(Endpoint::Wire.side(), Side::Nic);
        assert_eq!(Endpoint::Host.side(), Side::Host);
    }

    #[test]
    fn side_crossing_logic() {
        assert!(!Side::Nic.crosses_to(Side::Nic));
        assert!(!Side::Host.crosses_to(Side::Host));
        assert!(Side::Nic.crosses_to(Side::Host));
        assert!(Side::Host.crosses_to(Side::Nic));
    }

    /// The Figure 1(a) chain: host -> FW(S) -> Monitor(S) -> Logger(S) -> LB(C) -> wire.
    fn figure1_path(monitor_dev: Device, logger_dev: Device) -> Vec<Hop> {
        vec![
            Hop::Endpoint(Endpoint::Host),
            vnf(0, Device::SmartNic),
            vnf(1, monitor_dev),
            vnf(2, logger_dev),
            vnf(3, Device::Cpu),
            Hop::Endpoint(Endpoint::Wire),
        ]
    }

    #[test]
    fn figure1_original_has_three_crossings() {
        // host->FW (1), Logger->LB (1), LB->wire (1)
        let path = figure1_path(Device::SmartNic, Device::SmartNic);
        assert_eq!(pcie_crossings(&path), 3);
    }

    #[test]
    fn figure1_naive_migration_adds_two_crossings() {
        // Migrating the interior Monitor to the CPU (Figure 1b).
        let path = figure1_path(Device::Cpu, Device::SmartNic);
        assert_eq!(pcie_crossings(&path), 5);
    }

    #[test]
    fn figure1_pam_migration_adds_no_crossing() {
        // Migrating the border Logger to the CPU (Figure 1c).
        let path = figure1_path(Device::SmartNic, Device::Cpu);
        assert_eq!(pcie_crossings(&path), 3);
    }

    #[test]
    fn crossings_of_trivial_paths() {
        assert_eq!(pcie_crossings(&[]), 0);
        assert_eq!(pcie_crossings(&[Hop::Endpoint(Endpoint::Wire)]), 0);
        let all_nic = vec![
            Hop::Endpoint(Endpoint::Wire),
            vnf(0, Device::SmartNic),
            vnf(1, Device::SmartNic),
            Hop::Endpoint(Endpoint::Wire),
        ];
        assert_eq!(pcie_crossings(&all_nic), 0);
    }

    #[test]
    fn hop_accessors_and_display() {
        let h = vnf(2, Device::SmartNic);
        assert_eq!(h.nf(), Some(NfId::new(2)));
        assert_eq!(h.side(), Side::Nic);
        assert_eq!(h.to_string(), "nf2@NIC");
        let e = Hop::Endpoint(Endpoint::Host);
        assert_eq!(e.nf(), None);
        assert_eq!(e.to_string(), "[host]");
        assert_eq!(Device::SmartNic.to_string(), "SmartNIC");
        assert_eq!(Side::Host.to_string(), "host-side");
    }
}
