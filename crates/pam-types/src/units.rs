//! Throughput and size units.
//!
//! The PAM resource model (poster §2) works in units of throughput: every vNF
//! has a capacity `θ^S_i` on the SmartNIC and `θ^C_i` on the CPU, expressed in
//! Gbps, and resource consumption is the ratio of current throughput to
//! capacity. [`Gbps`] and [`Ratio`] make that arithmetic explicit and keep the
//! unit conversions (bits vs bytes, Gbps vs bits-per-nanosecond) in one place.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A throughput expressed in gigabits per second.
///
/// This is the unit the paper's Table 1 uses for vNF capacities and the unit
/// the experiment harness reports. Internally stored as an `f64` number of
/// Gbps; helper constructors cover the other representations used in the
/// workspace (bits/s, bytes over a duration, packets of a given size at a
/// rate).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Gbps(pub f64);

impl Gbps {
    /// Zero throughput.
    pub const ZERO: Gbps = Gbps(0.0);

    /// Creates a throughput from a number of gigabits per second.
    pub const fn new(gbps: f64) -> Self {
        Gbps(gbps)
    }

    /// Creates a throughput from bits per second.
    pub fn from_bits_per_sec(bps: f64) -> Self {
        Gbps(bps / 1e9)
    }

    /// Creates a throughput from bytes per second.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        Gbps(bytes_per_sec * 8.0 / 1e9)
    }

    /// Creates a throughput from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Gbps(mbps / 1e3)
    }

    /// The throughput achieved by sending `packets_per_sec` packets of
    /// `packet_size` bytes each.
    pub fn from_packet_rate(packets_per_sec: f64, packet_size: ByteSize) -> Self {
        Gbps::from_bytes_per_sec(packets_per_sec * packet_size.as_bytes() as f64)
    }

    /// Value in gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0
    }

    /// Value in bits per second.
    pub fn as_bits_per_sec(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0 * 1e9 / 8.0
    }

    /// Value in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 * 1e3
    }

    /// Number of packets per second of `packet_size` this throughput carries.
    pub fn packet_rate(self, packet_size: ByteSize) -> f64 {
        if packet_size.as_bytes() == 0 {
            return 0.0;
        }
        self.as_bytes_per_sec() / packet_size.as_bytes() as f64
    }

    /// The utilisation ratio of this throughput against a `capacity`
    /// (`θ_cur / θ_cap` in the paper's notation).
    ///
    /// A zero or negative capacity yields [`Ratio::SATURATED`] — anything
    /// offered to a device with no capacity is, by definition, overload.
    pub fn utilisation_of(self, capacity: Gbps) -> Ratio {
        if capacity.0 <= 0.0 {
            if self.0 <= 0.0 {
                Ratio::ZERO
            } else {
                Ratio::SATURATED
            }
        } else {
            Ratio(self.0 / capacity.0)
        }
    }

    /// Clamps a possibly negative intermediate value back to zero.
    pub fn max_zero(self) -> Gbps {
        Gbps(self.0.max(0.0))
    }

    /// Returns the smaller of two throughputs.
    pub fn min(self, other: Gbps) -> Gbps {
        Gbps(self.0.min(other.0))
    }

    /// Returns the larger of two throughputs.
    pub fn max(self, other: Gbps) -> Gbps {
        Gbps(self.0.max(other.0))
    }

    /// True when the value is finite and non-negative.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for Gbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 || self.0 == 0.0 {
            write!(f, "{:.2} Gbps", self.0)
        } else {
            write!(f, "{:.1} Mbps", self.0 * 1e3)
        }
    }
}

impl Add for Gbps {
    type Output = Gbps;
    fn add(self, rhs: Gbps) -> Gbps {
        Gbps(self.0 + rhs.0)
    }
}

impl AddAssign for Gbps {
    fn add_assign(&mut self, rhs: Gbps) {
        self.0 += rhs.0;
    }
}

impl Sub for Gbps {
    type Output = Gbps;
    fn sub(self, rhs: Gbps) -> Gbps {
        Gbps(self.0 - rhs.0)
    }
}

impl SubAssign for Gbps {
    fn sub_assign(&mut self, rhs: Gbps) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Gbps {
    type Output = Gbps;
    fn mul(self, rhs: f64) -> Gbps {
        Gbps(self.0 * rhs)
    }
}

impl Div<f64> for Gbps {
    type Output = Gbps;
    fn div(self, rhs: f64) -> Gbps {
        Gbps(self.0 / rhs)
    }
}

impl Div<Gbps> for Gbps {
    type Output = f64;
    fn div(self, rhs: Gbps) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Gbps {
    fn sum<I: Iterator<Item = Gbps>>(iter: I) -> Gbps {
        iter.fold(Gbps::ZERO, |a, b| a + b)
    }
}

/// A dimensionless utilisation ratio (`θ_cur / θ_cap`).
///
/// `1.0` means a device or vNF is exactly at capacity; anything above is
/// overload. The paper's feasibility conditions (Eq. 2 and Eq. 3) are
/// comparisons of sums of these ratios against 1.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ratio(pub f64);

impl Ratio {
    /// Zero utilisation.
    pub const ZERO: Ratio = Ratio(0.0);
    /// Exactly at capacity.
    pub const FULL: Ratio = Ratio(1.0);
    /// A sentinel ratio used when capacity is zero but load is offered.
    pub const SATURATED: Ratio = Ratio(f64::INFINITY);

    /// Creates a ratio from a raw value.
    pub const fn new(value: f64) -> Self {
        Ratio(value)
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The value expressed as a percentage.
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// True when the ratio indicates overload with respect to `threshold`
    /// (strictly greater, matching the paper's `< 1` feasibility conditions).
    pub fn exceeds(self, threshold: Ratio) -> bool {
        self.0 > threshold.0
    }

    /// True when strictly below 1.0 (the paper's feasibility test).
    pub fn is_feasible(self) -> bool {
        self.0 < 1.0
    }

    /// Headroom left before reaching 1.0 (never negative).
    pub fn headroom(self) -> Ratio {
        Ratio((1.0 - self.0).max(0.0))
    }

    /// Saturating clamp to `[0, 1]`, useful for display.
    pub fn clamped(self) -> Ratio {
        Ratio(self.0.clamp(0.0, 1.0))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 + rhs.0)
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        self.0 += rhs.0;
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 - rhs.0)
    }
}

impl Mul<f64> for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: f64) -> Ratio {
        Ratio(self.0 * rhs)
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |a, b| a + b)
    }
}

/// A size in bytes.
///
/// Packet sizes in the evaluation range from 64 B to 1500 B; buffer and state
/// sizes during migration are larger, so the type is backed by a `u64`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);
    /// The minimum Ethernet frame size used in the evaluation (64 B).
    pub const MIN_FRAME: ByteSize = ByteSize(64);
    /// The maximum standard Ethernet frame size used in the evaluation (1500 B).
    pub const MAX_FRAME: ByteSize = ByteSize(1500);

    /// Creates a size from a number of bytes.
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Creates a size from a number of kibibytes, saturating at `u64::MAX` B.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n.saturating_mul(1024))
    }

    /// Creates a size from a number of mebibytes, saturating at `u64::MAX` B.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n.saturating_mul(1024 * 1024))
    }

    /// Number of bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Number of bits, saturating at `u64::MAX`.
    ///
    /// Sizes above `u64::MAX / 8` bytes clamp instead of wrapping; this
    /// matters for [`crate::SimDuration::transmission`], which would
    /// otherwise compute a near-zero serialisation time for a near-MAX
    /// payload.
    pub const fn as_bits(self) -> u64 {
        self.0.saturating_mul(8)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by a scalar. State-sizing arithmetic
    /// (per-flow overhead × flow count) uses this so absurd configurations
    /// clamp instead of wrapping.
    pub fn saturating_mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(rhs))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * 1024;
        const GIB: u64 = 1024 * 1024 * 1024;
        if self.0 >= GIB {
            write!(f, "{:.2} GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= 16 * KIB {
            write!(f, "{:.1} KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// Saturates at `u64::MAX` bytes rather than wrapping, matching the
/// explicit [`ByteSize::saturating_add`] helper.
impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(rhs))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_conversions_round_trip() {
        let g = Gbps::new(10.0);
        assert_eq!(g.as_bits_per_sec(), 10e9);
        assert_eq!(g.as_bytes_per_sec(), 1.25e9);
        assert_eq!(Gbps::from_bits_per_sec(10e9), g);
        assert_eq!(Gbps::from_bytes_per_sec(1.25e9), g);
        assert_eq!(Gbps::from_mbps(10_000.0), g);
        assert!((g.as_mbps() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn gbps_packet_rate_matches_inverse() {
        let size = ByteSize::bytes(1000);
        let g = Gbps::from_packet_rate(1_000_000.0, size);
        assert!((g.as_gbps() - 8.0).abs() < 1e-9);
        assert!((g.packet_rate(size) - 1_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn gbps_packet_rate_zero_size_is_zero() {
        assert_eq!(Gbps::new(10.0).packet_rate(ByteSize::ZERO), 0.0);
    }

    #[test]
    fn utilisation_matches_paper_example() {
        // Logger at 1 Gbps of offered load against its 2 Gbps SmartNIC capacity.
        let util = Gbps::new(1.0).utilisation_of(Gbps::new(2.0));
        assert!((util.value() - 0.5).abs() < 1e-12);
        assert!(util.is_feasible());
    }

    #[test]
    fn utilisation_with_zero_capacity_saturates() {
        assert_eq!(Gbps::new(1.0).utilisation_of(Gbps::ZERO), Ratio::SATURATED);
        assert_eq!(Gbps::ZERO.utilisation_of(Gbps::ZERO), Ratio::ZERO);
    }

    #[test]
    fn ratio_feasibility_is_strict() {
        assert!(Ratio::new(0.999).is_feasible());
        assert!(!Ratio::FULL.is_feasible());
        assert!(!Ratio::new(1.2).is_feasible());
    }

    #[test]
    fn ratio_headroom_never_negative() {
        assert_eq!(Ratio::new(1.4).headroom(), Ratio::ZERO);
        assert!((Ratio::new(0.25).headroom().value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ratio_sum_matches_manual_addition() {
        let total: Ratio = [0.1, 0.2, 0.3].iter().map(|&v| Ratio::new(v)).sum();
        assert!((total.value() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn gbps_arithmetic() {
        let a = Gbps::new(3.0);
        let b = Gbps::new(1.5);
        assert_eq!(a + b, Gbps::new(4.5));
        assert_eq!(a - b, Gbps::new(1.5));
        assert_eq!(a * 2.0, Gbps::new(6.0));
        assert_eq!(a / 2.0, Gbps::new(1.5));
        assert!((a / b - 2.0).abs() < 1e-12);
        let sum: Gbps = vec![a, b, b].into_iter().sum();
        assert_eq!(sum, Gbps::new(6.0));
    }

    #[test]
    fn gbps_min_max_and_clamp() {
        let a = Gbps::new(3.0);
        let b = Gbps::new(1.5);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!((b - a).max_zero(), Gbps::ZERO);
        assert!(a.is_valid());
        assert!(!Gbps::new(f64::NAN).is_valid());
        assert!(!Gbps::new(-1.0).is_valid());
    }

    #[test]
    fn byte_size_constructors_and_display() {
        assert_eq!(ByteSize::kib(2).as_bytes(), 2048);
        assert_eq!(ByteSize::mib(1).as_bytes(), 1024 * 1024);
        assert_eq!(ByteSize::bytes(64).as_bits(), 512);
        assert_eq!(format!("{}", ByteSize::bytes(1500)), "1500 B");
        assert_eq!(format!("{}", ByteSize::mib(3)), "3.00 MiB");
    }

    #[test]
    fn byte_size_saturating_ops() {
        let a = ByteSize::bytes(10);
        let b = ByteSize::bytes(30);
        assert_eq!(a.saturating_sub(b), ByteSize::ZERO);
        assert_eq!(a.saturating_add(b), ByteSize::bytes(40));
        assert_eq!(b - a, ByteSize::bytes(20));
        assert_eq!(a * 3, ByteSize::bytes(30));
        assert_eq!(a.saturating_mul(3), ByteSize::bytes(30));
    }

    #[test]
    fn byte_size_saturating_mul_clamps_near_u64_max() {
        // u64::MAX-adjacent sizes must clamp, not wrap (regression for the
        // migration state-sizing arithmetic).
        let huge = ByteSize::bytes(u64::MAX / 2);
        assert_eq!(huge.saturating_mul(3), ByteSize::bytes(u64::MAX));
        assert_eq!(huge.saturating_mul(2), ByteSize::bytes(u64::MAX - 1));
        assert_eq!(
            ByteSize::bytes(u64::MAX).saturating_mul(u64::MAX),
            ByteSize::bytes(u64::MAX)
        );
        assert_eq!(ByteSize::bytes(u64::MAX).saturating_mul(0), ByteSize::ZERO);
    }

    #[test]
    fn byte_size_operators_clamp_near_u64_max() {
        // The plain operators must behave like the saturating helpers for
        // u64::MAX-adjacent values instead of wrapping (regression: a near-MAX
        // running byte counter wrapped to a tiny total).
        let huge = ByteSize::bytes(u64::MAX - 10);
        assert_eq!(huge + ByteSize::bytes(100), ByteSize::bytes(u64::MAX));
        let mut acc = huge;
        acc += ByteSize::bytes(100);
        assert_eq!(acc, ByteSize::bytes(u64::MAX));
        assert_eq!(huge * 5, ByteSize::bytes(u64::MAX));
        assert_eq!(ByteSize::kib(u64::MAX), ByteSize::bytes(u64::MAX));
        assert_eq!(ByteSize::mib(u64::MAX), ByteSize::bytes(u64::MAX));
    }

    #[test]
    fn as_bits_clamps_instead_of_wrapping() {
        // (u64::MAX/8 + 1) * 8 used to wrap to 0 bits.
        assert_eq!(ByteSize::bytes(u64::MAX / 8 + 1).as_bits(), u64::MAX);
        assert_eq!(ByteSize::bytes(u64::MAX).as_bits(), u64::MAX);
        // Normal sizes are unchanged by the clamp.
        assert_eq!(ByteSize::bytes(u64::MAX / 8).as_bits(), u64::MAX - 7);
        assert_eq!(ByteSize::bytes(64).as_bits(), 512);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Gbps::new(3.2)), "3.20 Gbps");
        assert_eq!(format!("{}", Gbps::new(0.5)), "500.0 Mbps");
        assert_eq!(format!("{}", Ratio::new(0.345)), "34.5%");
    }

    #[test]
    fn serde_round_trip() {
        let g: Gbps = serde_json::from_str("3.2").unwrap();
        assert_eq!(g, Gbps::new(3.2));
        assert_eq!(serde_json::to_string(&ByteSize::bytes(64)).unwrap(), "64");
    }
}
