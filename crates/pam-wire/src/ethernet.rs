//! Ethernet II frames.

use std::fmt;

use pam_types::PamError;

/// Length of an Ethernet II header: destination + source MAC + ethertype.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddress(pub [u8; 6]);

impl MacAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddress = MacAddress([0xff; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddress(octets)
    }

    /// The raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True when the group (multicast) bit is set.
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for unicast (not multicast, not broadcast) addresses.
    pub fn is_unicast(self) -> bool {
        !self.is_multicast()
    }

    /// A deterministic, locally administered unicast address derived from an
    /// index. Used by the traffic generator to synthesise endpoints.
    pub const fn from_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddress([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// The ethertype of the payload carried by a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806) — recognised but not processed by any vNF here.
    Arp,
    /// Any other ethertype, kept verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit on-wire value.
    pub const fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Parses a 16-bit on-wire value.
    pub const fn from_value(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "IPv4"),
            EtherType::Arp => write!(f, "ARP"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

/// A view over a buffer containing an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer, checking that it is long enough to hold the header.
    pub fn new_checked(buffer: T) -> Result<Self, PamError> {
        if buffer.as_ref().len() < ETHERNET_HEADER_LEN {
            return Err(PamError::malformed(
                "ethernet",
                format!(
                    "buffer length {} is shorter than the {ETHERNET_HEADER_LEN}-byte header",
                    buffer.as_ref().len()
                ),
            ));
        }
        Ok(EthernetFrame { buffer })
    }

    /// Wraps a buffer without length checks; accessors panic on short buffers.
    pub fn new_unchecked(buffer: T) -> Self {
        EthernetFrame { buffer }
    }

    /// Releases the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> MacAddress {
        let b = self.buffer.as_ref();
        MacAddress([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> MacAddress {
        let b = self.buffer.as_ref();
        MacAddress([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// The ethertype field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from_value(u16::from_be_bytes([b[12], b[13]]))
    }

    /// The payload following the Ethernet header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[ETHERNET_HEADER_LEN..]
    }

    /// Total frame length in bytes.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: MacAddress) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Sets the source MAC address.
    pub fn set_src_addr(&mut self, addr: MacAddress) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Sets the ethertype field.
    pub fn set_ethertype(&mut self, ethertype: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&ethertype.value().to_be_bytes());
    }

    /// Mutable access to the payload following the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[ETHERNET_HEADER_LEN..]
    }
}

/// A parsed, validated representation of an Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Source MAC address.
    pub src: MacAddress,
    /// Destination MAC address.
    pub dst: MacAddress,
    /// Payload ethertype.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parses the header fields out of a frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &EthernetFrame<T>) -> Self {
        EthernetRepr {
            src: frame.src_addr(),
            dst: frame.dst_addr(),
            ethertype: frame.ethertype(),
        }
    }

    /// Emits the header fields into a frame view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut EthernetFrame<T>) {
        frame.set_src_addr(self.src);
        frame.set_dst_addr(self.dst);
        frame.set_ethertype(self.ethertype);
    }

    /// The length this header occupies on the wire.
    pub const fn header_len(&self) -> usize {
        ETHERNET_HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut buf = vec![0u8; ETHERNET_HEADER_LEN + 4];
        buf[0..6].copy_from_slice(&[0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff]);
        buf[6..12].copy_from_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x01]);
        buf[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
        buf[14..].copy_from_slice(&[1, 2, 3, 4]);
        buf
    }

    #[test]
    fn parse_fields() {
        let frame = EthernetFrame::new_checked(sample_frame()).unwrap();
        assert_eq!(
            frame.dst_addr(),
            MacAddress::new([0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff])
        );
        assert_eq!(frame.src_addr(), MacAddress::from_index(1));
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), &[1, 2, 3, 4]);
        assert_eq!(frame.total_len(), 18);
    }

    #[test]
    fn short_buffer_is_rejected() {
        let err = EthernetFrame::new_checked([0u8; 10]).unwrap_err();
        assert!(matches!(
            err,
            PamError::Malformed {
                layer: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn repr_round_trip() {
        let frame = EthernetFrame::new_checked(sample_frame()).unwrap();
        let repr = EthernetRepr::parse(&frame);
        let mut out = EthernetFrame::new_unchecked(vec![0u8; ETHERNET_HEADER_LEN + 4]);
        repr.emit(&mut out);
        out.payload_mut().copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(out.into_inner(), sample_frame());
        assert_eq!(repr.header_len(), 14);
    }

    #[test]
    fn setters_update_fields() {
        let mut frame = EthernetFrame::new_unchecked(vec![0u8; ETHERNET_HEADER_LEN]);
        frame.set_dst_addr(MacAddress::BROADCAST);
        frame.set_src_addr(MacAddress::from_index(7));
        frame.set_ethertype(EtherType::Arp);
        assert!(frame.dst_addr().is_broadcast());
        assert!(frame.dst_addr().is_multicast());
        assert!(frame.src_addr().is_unicast());
        assert_eq!(frame.ethertype(), EtherType::Arp);
    }

    #[test]
    fn ethertype_values() {
        assert_eq!(EtherType::Ipv4.value(), 0x0800);
        assert_eq!(EtherType::from_value(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_value(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Other(0x86dd).value(), 0x86dd);
        assert_eq!(EtherType::Ipv4.to_string(), "IPv4");
        assert_eq!(EtherType::Arp.to_string(), "ARP");
        assert_eq!(EtherType::Other(0x86dd).to_string(), "0x86dd");
    }

    #[test]
    fn mac_display_and_classes() {
        let mac = MacAddress::new([0x02, 0x00, 0x00, 0x00, 0x00, 0x2a]);
        assert_eq!(mac.to_string(), "02:00:00:00:00:2a");
        assert!(mac.is_unicast());
        assert!(!mac.is_broadcast());
        assert!(MacAddress::new([0x01, 0, 0, 0, 0, 0]).is_multicast());
        assert_eq!(mac.octets()[5], 0x2a);
    }

    #[test]
    fn mac_from_index_is_deterministic_and_unique() {
        let a = MacAddress::from_index(1);
        let b = MacAddress::from_index(2);
        assert_ne!(a, b);
        assert_eq!(a, MacAddress::from_index(1));
    }
}
