//! TCP segments.

use pam_types::PamError;
use std::fmt;

use crate::checksum::pseudo_header_checksum;
use crate::five_tuple::IpProtocol;

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN: sender has finished sending.
    pub fin: bool,
    /// SYN: synchronise sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push buffered data to the application.
    pub psh: bool,
    /// ACK: the acknowledgement number is valid.
    pub ack: bool,
}

impl TcpFlags {
    /// Flags for a connection-opening SYN segment.
    pub const SYN: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: false,
    };
    /// Flags for an established-connection data segment (ACK set).
    pub const ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
    };
    /// Flags for a connection-closing FIN+ACK segment.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
    };

    /// Encodes the flags into the low byte of the TCP flags field.
    pub fn to_byte(self) -> u8 {
        u8::from(self.fin)
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    /// Decodes the low byte of the TCP flags field.
    pub fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.syn {
            names.push("SYN");
        }
        if self.ack {
            names.push("ACK");
        }
        if self.fin {
            names.push("FIN");
        }
        if self.rst {
            names.push("RST");
        }
        if self.psh {
            names.push("PSH");
        }
        if names.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", names.join("|"))
        }
    }
}

/// A view over a buffer containing a TCP segment (header + payload).
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps a buffer, checking it is long enough for the fixed header and
    /// that the data offset is consistent.
    pub fn new_checked(buffer: T) -> Result<Self, PamError> {
        let len = buffer.as_ref().len();
        if len < TCP_HEADER_LEN {
            return Err(PamError::malformed(
                "tcp",
                format!("buffer length {len} is shorter than the 20-byte header"),
            ));
        }
        let seg = TcpSegment { buffer };
        if seg.header_len() < TCP_HEADER_LEN || seg.header_len() > len {
            return Err(PamError::malformed(
                "tcp",
                format!("data offset {} bytes is out of range", seg.header_len()),
            ));
        }
        Ok(seg)
    }

    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        TcpSegment { buffer }
    }

    /// Releases the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq_number(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgement number.
    pub fn ack_number(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[12] >> 4) as usize) * 4
    }

    /// Control flags.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_byte(self.buffer.as_ref()[13])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[16], b[17]])
    }

    /// Payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verifies the checksum given the pseudo-header addresses.
    pub fn verify_checksum(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        pseudo_header_checksum(src, dst, IpProtocol::Tcp, self.buffer.as_ref()) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq_number(&mut self, seq: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&seq.to_be_bytes());
    }

    /// Sets the acknowledgement number.
    pub fn set_ack_number(&mut self, ack: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&ack.to_be_bytes());
    }

    /// Sets the data offset for a header of `len` bytes (multiple of 4).
    pub fn set_header_len(&mut self, len: usize) {
        self.buffer.as_mut()[12] = ((len / 4) as u8) << 4;
    }

    /// Sets the control flags.
    pub fn set_flags(&mut self, flags: TcpFlags) {
        self.buffer.as_mut()[13] = flags.to_byte();
    }

    /// Sets the receive window.
    pub fn set_window(&mut self, window: u16) {
        self.buffer.as_mut()[14..16].copy_from_slice(&window.to_be_bytes());
    }

    /// Sets the checksum field.
    pub fn set_checksum(&mut self, checksum: u16) {
        self.buffer.as_mut()[16..18].copy_from_slice(&checksum.to_be_bytes());
    }

    /// Computes and stores the checksum for the given pseudo-header addresses.
    pub fn fill_checksum(&mut self, src: [u8; 4], dst: [u8; 4]) {
        self.set_checksum(0);
        let csum = pseudo_header_checksum(src, dst, IpProtocol::Tcp, self.buffer.as_ref());
        self.set_checksum(csum);
    }
}

/// A parsed representation of a TCP header (without options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpRepr {
    /// Parses a segment view into a repr.
    pub fn parse<T: AsRef<[u8]>>(seg: &TcpSegment<T>) -> Self {
        TcpRepr {
            src_port: seg.src_port(),
            dst_port: seg.dst_port(),
            seq: seg.seq_number(),
            ack: seg.ack_number(),
            flags: seg.flags(),
            window: seg.window(),
        }
    }

    /// Emits this header into a segment view (checksum left to the caller,
    /// which knows the pseudo-header addresses).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, seg: &mut TcpSegment<T>) {
        seg.set_src_port(self.src_port);
        seg.set_dst_port(self.dst_port);
        seg.set_seq_number(self.seq);
        seg.set_ack_number(self.ack);
        seg.set_header_len(TCP_HEADER_LEN);
        seg.set_flags(self.flags);
        seg.set_window(self.window);
    }

    /// Length of the emitted header.
    pub const fn header_len(&self) -> usize {
        TCP_HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [10, 0, 0, 1];
    const DST: [u8; 4] = [10, 0, 0, 2];

    fn sample_repr() -> TcpRepr {
        TcpRepr {
            src_port: 443,
            dst_port: 51234,
            seq: 0x0102_0304,
            ack: 0x0a0b_0c0d,
            flags: TcpFlags::ACK,
            window: 29200,
        }
    }

    fn emitted(payload: &[u8]) -> Vec<u8> {
        let mut seg = TcpSegment::new_unchecked(vec![0u8; TCP_HEADER_LEN + payload.len()]);
        sample_repr().emit(&mut seg);
        seg.payload_dummy_fill(payload);
        seg.fill_checksum(SRC, DST);
        seg.into_inner()
    }

    impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
        fn payload_dummy_fill(&mut self, payload: &[u8]) {
            let off = self.header_len();
            self.buffer.as_mut()[off..off + payload.len()].copy_from_slice(payload);
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let buf = emitted(b"hello");
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(TcpRepr::parse(&seg), sample_repr());
        assert_eq!(seg.payload(), b"hello");
        assert!(seg.verify_checksum(SRC, DST));
        assert_eq!(sample_repr().header_len(), TCP_HEADER_LEN);
    }

    #[test]
    fn checksum_depends_on_pseudo_header() {
        let buf = emitted(b"data");
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(!seg.verify_checksum(SRC, [10, 0, 0, 3]));
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = emitted(b"data");
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(!seg.verify_checksum(SRC, DST));
    }

    #[test]
    fn short_and_inconsistent_buffers_rejected() {
        assert!(TcpSegment::new_checked([0u8; 10]).is_err());
        let mut buf = [0u8; TCP_HEADER_LEN];
        buf[12] = 0xf0; // data offset 60 bytes > buffer
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
        buf[12] = 0x40; // data offset 16 bytes < 20
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn flags_round_trip() {
        for flags in [
            TcpFlags::SYN,
            TcpFlags::ACK,
            TcpFlags::FIN_ACK,
            TcpFlags {
                rst: true,
                psh: true,
                ..TcpFlags::default()
            },
        ] {
            assert_eq!(TcpFlags::from_byte(flags.to_byte()), flags);
        }
        assert_eq!(TcpFlags::SYN.to_string(), "SYN");
        assert_eq!(TcpFlags::FIN_ACK.to_string(), "ACK|FIN");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }

    #[test]
    fn port_rewrite_keeps_checksum_valid_after_refill() {
        let mut buf = emitted(b"payload");
        {
            let mut seg = TcpSegment::new_unchecked(&mut buf[..]);
            seg.set_src_port(8080);
            seg.fill_checksum(SRC, DST);
        }
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(seg.src_port(), 8080);
        assert!(seg.verify_checksum(SRC, DST));
    }
}
