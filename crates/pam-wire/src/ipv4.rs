//! IPv4 packets.

use std::net::Ipv4Addr;

use pam_types::PamError;

use crate::checksum::internet_checksum;
use crate::five_tuple::IpProtocol;

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// A view over a buffer containing an IPv4 packet (header + payload).
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer, validating version, header length and total length.
    pub fn new_checked(buffer: T) -> Result<Self, PamError> {
        let len = buffer.as_ref().len();
        if len < IPV4_HEADER_LEN {
            return Err(PamError::malformed(
                "ipv4",
                format!("buffer length {len} is shorter than the 20-byte header"),
            ));
        }
        let packet = Ipv4Packet { buffer };
        if packet.version() != 4 {
            return Err(PamError::malformed(
                "ipv4",
                format!("version {} is not 4", packet.version()),
            ));
        }
        if packet.header_len() < IPV4_HEADER_LEN || packet.header_len() > len {
            return Err(PamError::malformed(
                "ipv4",
                format!("header length {} is out of range", packet.header_len()),
            ));
        }
        if (packet.total_len() as usize) < packet.header_len() || packet.total_len() as usize > len
        {
            return Err(PamError::malformed(
                "ipv4",
                format!("total length {} is out of range", packet.total_len()),
            ));
        }
        Ok(packet)
    }

    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Releases the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version field (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[0] & 0x0f) as usize) * 4
    }

    /// Differentiated services field.
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[1] >> 2
    }

    /// Total length field (header + payload) in bytes.
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Identification field.
    pub fn identification(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Time-to-live field.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Transport protocol carried in the payload.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from_number(self.buffer.as_ref()[9])
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// True when the header checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        let header = &self.buffer.as_ref()[..self.header_len()];
        internet_checksum(header) == 0
    }

    /// The transport payload (bytes after the header, bounded by total length).
    pub fn payload(&self) -> &[u8] {
        let header_len = self.header_len();
        let total = (self.total_len() as usize).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[header_len..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Sets version 4 and the header length in bytes (must be a multiple of 4).
    pub fn set_version_and_header_len(&mut self, header_len: usize) {
        self.buffer.as_mut()[0] = 0x40 | ((header_len / 4) as u8 & 0x0f);
    }

    /// Sets the DSCP field.
    pub fn set_dscp(&mut self, dscp: u8) {
        self.buffer.as_mut()[1] = dscp << 2;
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_identification(&mut self, id: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets flags and fragment offset to "don't fragment, offset 0".
    pub fn set_dont_fragment(&mut self) {
        self.buffer.as_mut()[6..8].copy_from_slice(&0x4000u16.to_be_bytes());
    }

    /// Sets the time-to-live field.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Decrements TTL and refreshes the checksum, returning the new TTL.
    /// Routers and forwarding vNFs use this.
    pub fn decrement_ttl(&mut self) -> u8 {
        let ttl = self.ttl().saturating_sub(1);
        self.set_ttl(ttl);
        self.fill_checksum();
        ttl
    }

    /// Sets the transport protocol field.
    pub fn set_protocol(&mut self, protocol: IpProtocol) {
        self.buffer.as_mut()[9] = protocol.number();
    }

    /// Sets the checksum field.
    pub fn set_checksum(&mut self, checksum: u16) {
        self.buffer.as_mut()[10..12].copy_from_slice(&checksum.to_be_bytes());
    }

    /// Sets the source address.
    pub fn set_src_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&addr.octets());
    }

    /// Sets the destination address.
    pub fn set_dst_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&addr.octets());
    }

    /// Zeroes the checksum field, recomputes it over the header and stores it.
    pub fn fill_checksum(&mut self) {
        self.set_checksum(0);
        let header_len = self.header_len();
        let csum = internet_checksum(&self.buffer.as_ref()[..header_len]);
        self.set_checksum(csum);
    }

    /// Mutable access to the transport payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = self.header_len();
        let total = (self.total_len() as usize).min(self.buffer.as_ref().len());
        &mut self.buffer.as_mut()[header_len..total]
    }
}

/// A parsed, validated representation of an IPv4 header (without options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub protocol: IpProtocol,
    /// Payload length in bytes (excluding the IPv4 header).
    pub payload_len: usize,
    /// Time-to-live.
    pub ttl: u8,
    /// Differentiated services code point.
    pub dscp: u8,
}

impl Ipv4Repr {
    /// Parses a packet view into a repr, verifying the header checksum.
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> Result<Self, PamError> {
        if !packet.verify_checksum() {
            return Err(PamError::ChecksumMismatch { layer: "ipv4" });
        }
        Ok(Ipv4Repr {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() as usize - packet.header_len(),
            ttl: packet.ttl(),
            dscp: packet.dscp(),
        })
    }

    /// Emits this header into a packet view and fills in the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv4Packet<T>) {
        packet.set_version_and_header_len(IPV4_HEADER_LEN);
        packet.set_dscp(self.dscp);
        packet.set_total_len((IPV4_HEADER_LEN + self.payload_len) as u16);
        packet.set_identification(0);
        packet.set_dont_fragment();
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src);
        packet.set_dst_addr(self.dst);
        packet.fill_checksum();
    }

    /// Length of the emitted header.
    pub const fn header_len(&self) -> usize {
        IPV4_HEADER_LEN
    }

    /// Total length (header + payload) of the emitted packet.
    pub const fn total_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 168, 1, 2),
            protocol: IpProtocol::Udp,
            payload_len: 8,
            ttl: 64,
            dscp: 0,
        }
    }

    fn emitted() -> Vec<u8> {
        let repr = sample_repr();
        let mut packet = Ipv4Packet::new_unchecked(vec![0u8; repr.total_len()]);
        repr.emit(&mut packet);
        packet.into_inner()
    }

    #[test]
    fn emit_parse_round_trip() {
        let buf = emitted();
        let packet = Ipv4Packet::new_checked(buf).unwrap();
        assert!(packet.verify_checksum());
        let parsed = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(parsed, sample_repr());
        assert_eq!(packet.version(), 4);
        assert_eq!(packet.header_len(), IPV4_HEADER_LEN);
        assert_eq!(packet.total_len(), 28);
        assert_eq!(packet.payload().len(), 8);
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let mut buf = emitted();
        buf[15] ^= 0xff; // corrupt part of the source address
        let packet = Ipv4Packet::new_checked(buf).unwrap();
        assert!(!packet.verify_checksum());
        assert_eq!(
            Ipv4Repr::parse(&packet).unwrap_err(),
            PamError::ChecksumMismatch { layer: "ipv4" }
        );
    }

    #[test]
    fn malformed_buffers_are_rejected() {
        assert!(Ipv4Packet::new_checked(vec![0u8; 10]).is_err());

        // Wrong version.
        let mut buf = emitted();
        buf[0] = 0x65;
        assert!(Ipv4Packet::new_checked(buf).is_err());

        // Header length larger than the buffer.
        let mut buf = emitted();
        buf[0] = 0x4f;
        assert!(Ipv4Packet::new_checked(buf).is_err());

        // Total length larger than the buffer.
        let mut buf = emitted();
        buf[2..4].copy_from_slice(&1000u16.to_be_bytes());
        assert!(Ipv4Packet::new_checked(buf).is_err());
    }

    #[test]
    fn ttl_decrement_refreshes_checksum() {
        let buf = emitted();
        let mut packet = Ipv4Packet::new_unchecked(buf);
        let before = packet.checksum();
        let ttl = packet.decrement_ttl();
        assert_eq!(ttl, 63);
        assert_ne!(packet.checksum(), before);
        assert!(packet.verify_checksum());
        // TTL never underflows.
        packet.set_ttl(0);
        assert_eq!(packet.decrement_ttl(), 0);
    }

    #[test]
    fn nat_style_rewrite_keeps_packet_valid() {
        let mut packet = Ipv4Packet::new_unchecked(emitted());
        packet.set_src_addr(Ipv4Addr::new(203, 0, 113, 7));
        packet.fill_checksum();
        assert!(packet.verify_checksum());
        let reparsed = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(reparsed.src, Ipv4Addr::new(203, 0, 113, 7));
        assert_eq!(reparsed.dst, sample_repr().dst);
    }

    #[test]
    fn payload_mut_is_bounded_by_total_len() {
        let repr = sample_repr();
        // Buffer larger than total_len (e.g. minimum frame padding).
        let mut buf = vec![0u8; repr.total_len() + 12];
        let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        assert_eq!(packet.payload().len(), 8);
        packet.payload_mut().fill(0xab);
        assert_eq!(packet.payload(), &[0xab; 8]);
    }

    #[test]
    fn field_accessors() {
        let mut packet = Ipv4Packet::new_unchecked(emitted());
        packet.set_dscp(46); // expedited forwarding
        packet.set_identification(0x1234);
        packet.fill_checksum();
        assert_eq!(packet.dscp(), 46);
        assert_eq!(packet.identification(), 0x1234);
        assert_eq!(packet.protocol(), IpProtocol::Udp);
        assert_eq!(packet.ttl(), 64);
    }
}
