//! Packet wire formats for the PAM workspace.
//!
//! The vNFs in [`pam-nf`](https://docs.rs/pam-nf) operate on real packet
//! bytes: the firewall matches 5-tuples, the NAT rewrites addresses and
//! recomputes checksums, the DPI engine scans payloads. This crate provides
//! the minimal, dependency-free wire formats those vNFs need, following the
//! two-level design used by `smoltcp`:
//!
//! * **view types** ([`EthernetFrame`], [`Ipv4Packet`], [`TcpSegment`],
//!   [`UdpDatagram`]) wrap a byte buffer (`AsRef<[u8]>`, optionally
//!   `AsMut<[u8]>`) and expose typed field accessors without copying;
//! * **repr types** ([`EthernetRepr`], [`Ipv4Repr`], [`TcpRepr`],
//!   [`UdpRepr`]) are parsed, validated summaries that can be emitted back
//!   into a buffer.
//!
//! [`FiveTuple`] extraction and the [`PacketBuilder`] used by the traffic
//! generator sit on top.
//!
//! Supported: Ethernet II, IPv4 (no options beyond raw length handling),
//! TCP, UDP, internet checksums. Deliberately unsupported (not needed by the
//! reproduction): VLANs, IPv6, IP fragmentation and TCP option parsing
//! beyond the data-offset field.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod five_tuple;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use builder::{PacketBuilder, TransportKind};
pub use checksum::{internet_checksum, pseudo_header_checksum};
pub use ethernet::{EtherType, EthernetFrame, EthernetRepr, MacAddress, ETHERNET_HEADER_LEN};
pub use five_tuple::{FiveTuple, IpProtocol};
pub use ipv4::{Ipv4Packet, Ipv4Repr, IPV4_HEADER_LEN};
pub use tcp::{TcpFlags, TcpRepr, TcpSegment, TCP_HEADER_LEN};
pub use udp::{UdpDatagram, UdpRepr, UDP_HEADER_LEN};
