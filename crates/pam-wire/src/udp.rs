//! UDP datagrams.

use pam_types::PamError;

use crate::checksum::pseudo_header_checksum;
use crate::five_tuple::IpProtocol;

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A view over a buffer containing a UDP datagram (header + payload).
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps a buffer, checking header presence and length-field consistency.
    pub fn new_checked(buffer: T) -> Result<Self, PamError> {
        let len = buffer.as_ref().len();
        if len < UDP_HEADER_LEN {
            return Err(PamError::malformed(
                "udp",
                format!("buffer length {len} is shorter than the 8-byte header"),
            ));
        }
        let dgram = UdpDatagram { buffer };
        let field = dgram.length() as usize;
        if field < UDP_HEADER_LEN || field > len {
            return Err(PamError::malformed(
                "udp",
                format!("length field {field} is out of range for buffer of {len}"),
            ));
        }
        Ok(dgram)
    }

    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        UdpDatagram { buffer }
    }

    /// Releases the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// The length field (header + payload).
    pub fn length(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// The checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// The payload (bounded by the length field).
    pub fn payload(&self) -> &[u8] {
        let end = (self.length() as usize).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[UDP_HEADER_LEN..end]
    }

    /// Verifies the checksum given pseudo-header addresses. A zero checksum
    /// means "not computed" and is accepted, per RFC 768.
    pub fn verify_checksum(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let end = (self.length() as usize).min(self.buffer.as_ref().len());
        pseudo_header_checksum(src, dst, IpProtocol::Udp, &self.buffer.as_ref()[..end]) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_length(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the checksum field.
    pub fn set_checksum(&mut self, checksum: u16) {
        self.buffer.as_mut()[6..8].copy_from_slice(&checksum.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let end = (self.length() as usize).min(self.buffer.as_ref().len());
        &mut self.buffer.as_mut()[UDP_HEADER_LEN..end]
    }

    /// Computes and stores the checksum for the given pseudo-header
    /// addresses. RFC 768 maps a computed value of zero to `0xffff`.
    pub fn fill_checksum(&mut self, src: [u8; 4], dst: [u8; 4]) {
        self.set_checksum(0);
        let end = (self.length() as usize).min(self.buffer.as_ref().len());
        let mut csum =
            pseudo_header_checksum(src, dst, IpProtocol::Udp, &self.buffer.as_ref()[..end]);
        if csum == 0 {
            csum = 0xffff;
        }
        self.set_checksum(csum);
    }
}

/// A parsed representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes (excluding the UDP header).
    pub payload_len: usize,
}

impl UdpRepr {
    /// Parses a datagram view into a repr.
    pub fn parse<T: AsRef<[u8]>>(dgram: &UdpDatagram<T>) -> Self {
        UdpRepr {
            src_port: dgram.src_port(),
            dst_port: dgram.dst_port(),
            payload_len: dgram.length() as usize - UDP_HEADER_LEN,
        }
    }

    /// Emits this header into a datagram view (checksum left to the caller).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, dgram: &mut UdpDatagram<T>) {
        dgram.set_src_port(self.src_port);
        dgram.set_dst_port(self.dst_port);
        dgram.set_length((UDP_HEADER_LEN + self.payload_len) as u16);
    }

    /// Length of the emitted header.
    pub const fn header_len(&self) -> usize {
        UDP_HEADER_LEN
    }

    /// Total emitted length (header + payload).
    pub const fn total_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [172, 16, 0, 1];
    const DST: [u8; 4] = [172, 16, 0, 2];

    fn emitted(payload: &[u8]) -> Vec<u8> {
        let repr = UdpRepr {
            src_port: 5353,
            dst_port: 53,
            payload_len: payload.len(),
        };
        let mut dgram = UdpDatagram::new_unchecked(vec![0u8; repr.total_len()]);
        repr.emit(&mut dgram);
        dgram.payload_mut().copy_from_slice(payload);
        dgram.fill_checksum(SRC, DST);
        dgram.into_inner()
    }

    #[test]
    fn emit_parse_round_trip() {
        let buf = emitted(b"query");
        let dgram = UdpDatagram::new_checked(&buf[..]).unwrap();
        let repr = UdpRepr::parse(&dgram);
        assert_eq!(repr.src_port, 5353);
        assert_eq!(repr.dst_port, 53);
        assert_eq!(repr.payload_len, 5);
        assert_eq!(dgram.payload(), b"query");
        assert!(dgram.verify_checksum(SRC, DST));
        assert_eq!(repr.header_len(), 8);
        assert_eq!(repr.total_len(), 13);
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let mut buf = emitted(b"x");
        buf[6] = 0;
        buf[7] = 0;
        let dgram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(dgram.verify_checksum(SRC, DST));
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = emitted(b"abcdef");
        buf[9] ^= 0x80;
        let dgram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!dgram.verify_checksum(SRC, DST));
    }

    #[test]
    fn invalid_length_field_rejected() {
        assert!(UdpDatagram::new_checked([0u8; 4]).is_err());
        let mut buf = emitted(b"abc");
        buf[4..6].copy_from_slice(&3u16.to_be_bytes()); // < header
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
        buf[4..6].copy_from_slice(&100u16.to_be_bytes()); // > buffer
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn payload_bounded_by_length_field() {
        // Buffer padded beyond the UDP length field (e.g. minimum Ethernet frame).
        let mut buf = emitted(b"ab");
        buf.extend_from_slice(&[0xee; 10]);
        let dgram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(dgram.payload(), b"ab");
    }

    #[test]
    fn port_rewrite() {
        let mut buf = emitted(b"p");
        {
            let mut dgram = UdpDatagram::new_unchecked(&mut buf[..]);
            dgram.set_dst_port(9999);
            dgram.fill_checksum(SRC, DST);
        }
        let dgram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(dgram.dst_port(), 9999);
        assert!(dgram.verify_checksum(SRC, DST));
    }
}
