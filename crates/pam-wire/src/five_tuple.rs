//! Transport protocols and the classic 5-tuple flow key.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::net::Ipv4Addr;

use pam_types::{FlowId, PamError};
use serde::{Deserialize, Serialize};

use crate::ipv4::Ipv4Packet;

/// The transport protocol carried by an IPv4 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IpProtocol {
    /// TCP (protocol number 6).
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// ICMP (protocol number 1) — carried but not interpreted.
    Icmp,
    /// Any other protocol, kept verbatim.
    Other(u8),
}

impl IpProtocol {
    /// The on-wire protocol number.
    pub const fn number(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// Parses an on-wire protocol number.
    pub const fn from_number(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }

    /// True for TCP or UDP, the protocols that carry ports.
    pub const fn has_ports(self) -> bool {
        matches!(self, IpProtocol::Tcp | IpProtocol::Udp)
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Tcp => write!(f, "TCP"),
            IpProtocol::Udp => write!(f, "UDP"),
            IpProtocol::Icmp => write!(f, "ICMP"),
            IpProtocol::Other(v) => write!(f, "proto-{v}"),
        }
    }
}

/// The classic 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination transport port (0 for port-less protocols).
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: IpProtocol,
}

impl FiveTuple {
    /// Builds a TCP 5-tuple.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: IpProtocol::Tcp,
        }
    }

    /// Builds a UDP 5-tuple.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: IpProtocol::Udp,
        }
    }

    /// Extracts the 5-tuple from an IPv4 packet (ports are read from the
    /// first four payload bytes for TCP/UDP, zero otherwise).
    pub fn from_ipv4<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> Result<Self, PamError> {
        let protocol = packet.protocol();
        let (src_port, dst_port) = if protocol.has_ports() {
            let payload = packet.payload();
            if payload.len() < 4 {
                return Err(PamError::malformed(
                    "transport",
                    "payload too short to contain ports",
                ));
            }
            (
                u16::from_be_bytes([payload[0], payload[1]]),
                u16::from_be_bytes([payload[2], payload[3]]),
            )
        } else {
            (0, 0)
        };
        Ok(FiveTuple {
            src_ip: packet.src_addr(),
            dst_ip: packet.dst_addr(),
            src_port,
            dst_port,
            protocol,
        })
    }

    /// The same connection seen from the opposite direction.
    pub fn reversed(self) -> Self {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A stable 64-bit hash of the tuple, used as the [`FlowId`] and for
    /// consistent-hash load balancing. Uses the FNV-1a construction so the
    /// value is identical across runs and platforms (unlike `DefaultHasher`).
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut feed = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        };
        for b in self.src_ip.octets() {
            feed(b);
        }
        for b in self.dst_ip.octets() {
            feed(b);
        }
        for b in self.src_port.to_be_bytes() {
            feed(b);
        }
        for b in self.dst_port.to_be_bytes() {
            feed(b);
        }
        feed(self.protocol.number());
        h
    }

    /// A direction-agnostic hash: both directions of a connection map to the
    /// same value. Stateful vNFs (NAT, load balancer) key their tables this way.
    pub fn bidirectional_hash(&self) -> u64 {
        let fwd = self.stable_hash();
        let rev = self.reversed().stable_hash();
        fwd ^ rev
    }

    /// The flow identifier derived from the stable hash.
    pub fn flow_id(&self) -> FlowId {
        FlowId::new(self.stable_hash())
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.protocol, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// Hashes an arbitrary value with FNV-1a; used by modules that need a stable
/// hash of something other than a 5-tuple (e.g. backend names in the load
/// balancer's consistent-hash ring).
pub fn stable_hash_bytes(bytes: &[u8]) -> u64 {
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    bytes.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{PacketBuilder, TransportKind};
    use std::collections::HashSet;

    fn tuple() -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            12345,
            Ipv4Addr::new(192, 168, 1, 1),
            443,
        )
    }

    #[test]
    fn protocol_numbers_round_trip() {
        for p in [
            IpProtocol::Tcp,
            IpProtocol::Udp,
            IpProtocol::Icmp,
            IpProtocol::Other(89),
        ] {
            assert_eq!(IpProtocol::from_number(p.number()), p);
        }
        assert!(IpProtocol::Tcp.has_ports());
        assert!(IpProtocol::Udp.has_ports());
        assert!(!IpProtocol::Icmp.has_ports());
        assert_eq!(IpProtocol::Other(89).to_string(), "proto-89");
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = tuple();
        let r = t.reversed();
        assert_eq!(r.src_ip, t.dst_ip);
        assert_eq!(r.dst_port, t.src_port);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn stable_hash_is_deterministic_and_discriminating() {
        let t = tuple();
        assert_eq!(t.stable_hash(), t.stable_hash());
        let mut other = t;
        other.src_port = 12346;
        assert_ne!(t.stable_hash(), other.stable_hash());
        assert_eq!(t.flow_id(), FlowId::new(t.stable_hash()));
    }

    #[test]
    fn bidirectional_hash_matches_both_directions() {
        let t = tuple();
        assert_eq!(t.bidirectional_hash(), t.reversed().bidirectional_hash());
        assert_ne!(t.stable_hash(), t.reversed().stable_hash());
    }

    #[test]
    fn hash_distribution_is_reasonable() {
        // 1000 distinct tuples should produce (nearly) 1000 distinct hashes.
        let mut hashes = HashSet::new();
        for i in 0..1000u32 {
            let t = FiveTuple::udp(
                Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                1000 + (i % 50) as u16,
                Ipv4Addr::new(192, 168, 0, 1),
                53,
            );
            hashes.insert(t.stable_hash());
        }
        assert!(hashes.len() >= 999);
    }

    #[test]
    fn extraction_from_built_packet() {
        let t = tuple();
        let bytes = PacketBuilder::new()
            .five_tuple(t)
            .transport(TransportKind::Tcp)
            .total_len(128)
            .build();
        let eth = crate::EthernetFrame::new_checked(&bytes[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(FiveTuple::from_ipv4(&ip).unwrap(), t);
    }

    #[test]
    fn extraction_rejects_truncated_transport() {
        // An IPv4 packet claiming UDP but with a 2-byte payload.
        let repr = crate::Ipv4Repr {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            protocol: IpProtocol::Udp,
            payload_len: 2,
            ttl: 64,
            dscp: 0,
        };
        let mut packet = Ipv4Packet::new_unchecked(vec![0u8; repr.total_len()]);
        repr.emit(&mut packet);
        let packet = Ipv4Packet::new_checked(packet.into_inner()).unwrap();
        assert!(FiveTuple::from_ipv4(&packet).is_err());
    }

    #[test]
    fn icmp_tuple_has_zero_ports() {
        let repr = crate::Ipv4Repr {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            protocol: IpProtocol::Icmp,
            payload_len: 8,
            ttl: 64,
            dscp: 0,
        };
        let mut packet = Ipv4Packet::new_unchecked(vec![0u8; repr.total_len()]);
        repr.emit(&mut packet);
        let t = FiveTuple::from_ipv4(&packet).unwrap();
        assert_eq!(t.src_port, 0);
        assert_eq!(t.dst_port, 0);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(tuple().to_string(), "TCP 10.0.0.1:12345 -> 192.168.1.1:443");
    }

    #[test]
    fn stable_hash_bytes_is_stable() {
        assert_eq!(
            stable_hash_bytes(b"backend-1"),
            stable_hash_bytes(b"backend-1")
        );
        assert_ne!(
            stable_hash_bytes(b"backend-1"),
            stable_hash_bytes(b"backend-2")
        );
    }
}
