//! Synthesising complete Ethernet/IPv4/TCP-or-UDP packets.
//!
//! The traffic generator (and many tests) need realistic packets of an exact
//! on-wire size carrying a chosen 5-tuple. [`PacketBuilder`] assembles the
//! Ethernet, IPv4 and transport headers, pads the payload to reach the
//! requested total frame length and fills in every checksum, so the resulting
//! bytes parse cleanly through all the view types in this crate.

use std::net::Ipv4Addr;

use pam_types::ByteSize;

use crate::ethernet::{EtherType, EthernetFrame, EthernetRepr, MacAddress, ETHERNET_HEADER_LEN};
use crate::five_tuple::{FiveTuple, IpProtocol};
use crate::ipv4::{Ipv4Packet, Ipv4Repr, IPV4_HEADER_LEN};
use crate::tcp::{TcpFlags, TcpRepr, TcpSegment, TCP_HEADER_LEN};
use crate::udp::{UdpDatagram, UdpRepr, UDP_HEADER_LEN};

/// Which transport header the builder emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Emit a TCP header (20 bytes, no options).
    Tcp,
    /// Emit a UDP header (8 bytes).
    Udp,
}

impl TransportKind {
    /// The length of the emitted transport header.
    pub const fn header_len(self) -> usize {
        match self {
            TransportKind::Tcp => TCP_HEADER_LEN,
            TransportKind::Udp => UDP_HEADER_LEN,
        }
    }

    /// The matching IP protocol number.
    pub const fn protocol(self) -> IpProtocol {
        match self {
            TransportKind::Tcp => IpProtocol::Tcp,
            TransportKind::Udp => IpProtocol::Udp,
        }
    }
}

/// Builder for complete frames. See the module documentation.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    transport: TransportKind,
    total_len: usize,
    ttl: u8,
    dscp: u8,
    tcp_flags: TcpFlags,
    seq: u32,
    payload_byte: u8,
}

/// The minimum frame the builder can produce: Ethernet + IPv4 + UDP headers.
pub const MIN_FRAME_LEN: usize = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN;

impl Default for PacketBuilder {
    fn default() -> Self {
        PacketBuilder {
            src_mac: MacAddress::from_index(1),
            dst_mac: MacAddress::from_index(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 10_000,
            dst_port: 80,
            transport: TransportKind::Udp,
            total_len: 64,
            ttl: 64,
            dscp: 0,
            tcp_flags: TcpFlags::ACK,
            seq: 0,
            payload_byte: 0x5a,
        }
    }
}

impl PacketBuilder {
    /// Creates a builder with the defaults documented on [`Default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets source and destination MAC addresses.
    pub fn macs(mut self, src: MacAddress, dst: MacAddress) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Sets every 5-tuple field at once.
    pub fn five_tuple(mut self, tuple: FiveTuple) -> Self {
        self.src_ip = tuple.src_ip;
        self.dst_ip = tuple.dst_ip;
        self.src_port = tuple.src_port;
        self.dst_port = tuple.dst_port;
        self.transport = match tuple.protocol {
            IpProtocol::Tcp => TransportKind::Tcp,
            _ => TransportKind::Udp,
        };
        self
    }

    /// Sets source and destination IPv4 addresses.
    pub fn ips(mut self, src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        self.src_ip = src;
        self.dst_ip = dst;
        self
    }

    /// Sets source and destination transport ports.
    pub fn ports(mut self, src: u16, dst: u16) -> Self {
        self.src_port = src;
        self.dst_port = dst;
        self
    }

    /// Chooses the transport header.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Sets the total on-wire frame length in bytes. Values below the header
    /// stack are raised to the minimum; the payload is padded to reach it.
    pub fn total_len(mut self, len: usize) -> Self {
        self.total_len = len;
        self
    }

    /// Sets the total length from a [`ByteSize`].
    pub fn size(self, size: ByteSize) -> Self {
        self.total_len(size.as_bytes() as usize)
    }

    /// Sets the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the IPv4 DSCP code point.
    pub fn dscp(mut self, dscp: u8) -> Self {
        self.dscp = dscp;
        self
    }

    /// Sets the TCP flags (only meaningful for [`TransportKind::Tcp`]).
    pub fn tcp_flags(mut self, flags: TcpFlags) -> Self {
        self.tcp_flags = flags;
        self
    }

    /// Sets the TCP sequence number.
    pub fn seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the byte value used to fill the payload.
    pub fn payload_byte(mut self, byte: u8) -> Self {
        self.payload_byte = byte;
        self
    }

    /// The header overhead for the configured transport.
    pub fn header_overhead(&self) -> usize {
        ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + self.transport.header_len()
    }

    /// Assembles the frame and returns the raw bytes.
    pub fn build(&self) -> Vec<u8> {
        let min_len = self.header_overhead();
        let total_len = self.total_len.max(min_len);
        let payload_len = total_len - min_len;
        let mut buf = vec![0u8; total_len];

        // Ethernet header.
        let eth_repr = EthernetRepr {
            src: self.src_mac,
            dst: self.dst_mac,
            ethertype: EtherType::Ipv4,
        };
        let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
        eth_repr.emit(&mut eth);

        // IPv4 header.
        let ip_repr = Ipv4Repr {
            src: self.src_ip,
            dst: self.dst_ip,
            protocol: self.transport.protocol(),
            payload_len: self.transport.header_len() + payload_len,
            ttl: self.ttl,
            dscp: self.dscp,
        };
        {
            let ip_buf = &mut buf[ETHERNET_HEADER_LEN..];
            let mut ip = Ipv4Packet::new_unchecked(ip_buf);
            ip_repr.emit(&mut ip);
        }

        // Transport header + payload + checksums.
        let src_octets = self.src_ip.octets();
        let dst_octets = self.dst_ip.octets();
        let transport_buf = &mut buf[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN..];
        match self.transport {
            TransportKind::Tcp => {
                let repr = TcpRepr {
                    src_port: self.src_port,
                    dst_port: self.dst_port,
                    seq: self.seq,
                    ack: 0,
                    flags: self.tcp_flags,
                    window: 65_535,
                };
                let mut seg = TcpSegment::new_unchecked(transport_buf);
                repr.emit(&mut seg);
                for b in seg.into_inner()[TCP_HEADER_LEN..].iter_mut() {
                    *b = self.payload_byte;
                }
                let mut seg =
                    TcpSegment::new_unchecked(&mut buf[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN..]);
                seg.fill_checksum(src_octets, dst_octets);
            }
            TransportKind::Udp => {
                let repr = UdpRepr {
                    src_port: self.src_port,
                    dst_port: self.dst_port,
                    payload_len,
                };
                let mut dgram = UdpDatagram::new_unchecked(transport_buf);
                repr.emit(&mut dgram);
                dgram.payload_mut().fill(self.payload_byte);
                dgram.fill_checksum(src_octets, dst_octets);
            }
        }

        buf
    }

    /// The 5-tuple the built packet will carry.
    pub fn tuple(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            protocol: self.transport.protocol(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse_all(bytes: &[u8]) -> (EthernetRepr, Ipv4Repr, FiveTuple) {
        let eth = EthernetFrame::new_checked(bytes).unwrap();
        let eth_repr = EthernetRepr::parse(&eth);
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        let ip_repr = Ipv4Repr::parse(&ip).unwrap();
        let tuple = FiveTuple::from_ipv4(&ip).unwrap();
        (eth_repr, ip_repr, tuple)
    }

    #[test]
    fn udp_packet_parses_back() {
        let builder = PacketBuilder::new()
            .ips(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8))
            .ports(1111, 2222)
            .transport(TransportKind::Udp)
            .total_len(200);
        let bytes = builder.build();
        assert_eq!(bytes.len(), 200);
        let (eth, ip, tuple) = parse_all(&bytes);
        assert_eq!(eth.ethertype, EtherType::Ipv4);
        assert_eq!(ip.protocol, IpProtocol::Udp);
        assert_eq!(tuple, builder.tuple());

        let ip_view = Ipv4Packet::new_checked(&bytes[ETHERNET_HEADER_LEN..]).unwrap();
        let udp = UdpDatagram::new_checked(ip_view.payload()).unwrap();
        assert!(udp.verify_checksum([1, 2, 3, 4], [5, 6, 7, 8]));
    }

    #[test]
    fn tcp_packet_parses_back() {
        let builder = PacketBuilder::new()
            .transport(TransportKind::Tcp)
            .tcp_flags(TcpFlags::SYN)
            .seq(42)
            .total_len(128);
        let bytes = builder.build();
        assert_eq!(bytes.len(), 128);
        let (_, ip, tuple) = parse_all(&bytes);
        assert_eq!(ip.protocol, IpProtocol::Tcp);
        assert_eq!(tuple.protocol, IpProtocol::Tcp);

        let ip_view = Ipv4Packet::new_checked(&bytes[ETHERNET_HEADER_LEN..]).unwrap();
        let tcp = TcpSegment::new_checked(ip_view.payload()).unwrap();
        assert_eq!(tcp.flags(), TcpFlags::SYN);
        assert_eq!(tcp.seq_number(), 42);
        assert!(tcp.verify_checksum(
            builder.tuple().src_ip.octets(),
            builder.tuple().dst_ip.octets()
        ));
    }

    #[test]
    fn tiny_requested_length_is_raised_to_minimum() {
        let bytes = PacketBuilder::new()
            .transport(TransportKind::Tcp)
            .total_len(1)
            .build();
        assert_eq!(
            bytes.len(),
            ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN
        );
        parse_all(&bytes);
    }

    #[test]
    fn size_and_total_len_agree() {
        let a = PacketBuilder::new().size(ByteSize::bytes(512)).build();
        let b = PacketBuilder::new().total_len(512).build();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn header_overhead_matches_transport() {
        assert_eq!(
            PacketBuilder::new()
                .transport(TransportKind::Udp)
                .header_overhead(),
            42
        );
        assert_eq!(
            PacketBuilder::new()
                .transport(TransportKind::Tcp)
                .header_overhead(),
            54
        );
        assert_eq!(MIN_FRAME_LEN, 42);
    }

    #[test]
    fn dscp_and_ttl_are_applied() {
        let bytes = PacketBuilder::new().dscp(46).ttl(8).total_len(100).build();
        let (_, ip, _) = parse_all(&bytes);
        assert_eq!(ip.dscp, 46);
        assert_eq!(ip.ttl, 8);
    }

    proptest! {
        /// Any frame the builder emits, for any evaluation packet size and
        /// either transport, parses back to the exact 5-tuple requested and
        /// has valid checksums at every layer.
        #[test]
        fn built_packets_always_parse(
            len in 64usize..1501,
            src in any::<u32>(),
            dst in any::<u32>(),
            sport in 1u16..,
            dport in 1u16..,
            is_tcp in any::<bool>(),
        ) {
            let kind = if is_tcp { TransportKind::Tcp } else { TransportKind::Udp };
            let builder = PacketBuilder::new()
                .ips(Ipv4Addr::from(src), Ipv4Addr::from(dst))
                .ports(sport, dport)
                .transport(kind)
                .total_len(len);
            let bytes = builder.build();
            prop_assert_eq!(bytes.len(), len.max(builder.header_overhead()));
            let eth = EthernetFrame::new_checked(&bytes[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            prop_assert!(ip.verify_checksum());
            let tuple = FiveTuple::from_ipv4(&ip).unwrap();
            prop_assert_eq!(tuple, builder.tuple());
        }
    }
}
