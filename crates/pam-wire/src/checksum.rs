//! Internet checksum (RFC 1071) helpers shared by IPv4, TCP and UDP.

use crate::five_tuple::IpProtocol;

/// Computes the one's-complement sum of `data`, folding carries, without
/// taking the final complement. Useful for combining partial sums.
fn ones_complement_sum(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Computes the internet checksum of `data` (RFC 1071).
///
/// The returned value is ready to be stored in a checksum field. Verifying a
/// buffer whose checksum field is filled in yields `0`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(ones_complement_sum(0, data))
}

/// Computes the TCP/UDP checksum over the IPv4 pseudo-header plus the
/// transport header and payload in `segment`.
pub fn pseudo_header_checksum(
    src: [u8; 4],
    dst: [u8; 4],
    protocol: IpProtocol,
    segment: &[u8],
) -> u16 {
    let mut acc = 0u32;
    acc = ones_complement_sum(acc, &src);
    acc = ones_complement_sum(acc, &dst);
    acc += u32::from(protocol.number());
    acc += segment.len() as u32;
    acc = ones_complement_sum(acc, segment);
    !fold(acc)
}

/// Verifies a buffer that already contains its checksum field: the folded
/// sum over the whole buffer must be `0xffff` (i.e. the complement is zero).
pub fn verify_checksum(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from RFC 1071 §3 / common references: the IPv4
    /// header `45 00 00 3c 1c 46 40 00 40 06 b1 e6 ac 10 0a 63 ac 10 0a 0c`
    /// has checksum 0xb1e6 when the checksum field is zeroed.
    #[test]
    fn rfc1071_reference_header() {
        let mut header = [
            0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
            0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        let csum = internet_checksum(&header);
        assert_eq!(csum, 0xb1e6);
        header[10..12].copy_from_slice(&csum.to_be_bytes());
        assert!(verify_checksum(&header));
    }

    #[test]
    fn odd_length_buffers_are_padded() {
        let even = internet_checksum(&[0x12, 0x34, 0x56, 0x00]);
        let odd = internet_checksum(&[0x12, 0x34, 0x56]);
        assert_eq!(even, odd);
    }

    #[test]
    fn empty_buffer_checksum() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut data = vec![0xde, 0xad, 0xbe, 0xef, 0x01, 0x02];
        let csum = internet_checksum(&data);
        data.extend_from_slice(&csum.to_be_bytes());
        assert!(verify_checksum(&data));
        data[1] ^= 0x40;
        assert!(!verify_checksum(&data));
    }

    #[test]
    fn pseudo_header_includes_addresses() {
        let seg = [0u8; 8];
        let a = pseudo_header_checksum([10, 0, 0, 1], [10, 0, 0, 2], IpProtocol::Udp, &seg);
        let b = pseudo_header_checksum([10, 0, 0, 1], [10, 0, 0, 3], IpProtocol::Udp, &seg);
        assert_ne!(a, b);
        let c = pseudo_header_checksum([10, 0, 0, 1], [10, 0, 0, 2], IpProtocol::Tcp, &seg);
        assert_ne!(a, c);
    }

    #[test]
    fn carry_folding_is_correct() {
        // Many 0xffff words force repeated carries.
        let data = vec![0xff; 64];
        let csum = internet_checksum(&data);
        let mut buf = data.clone();
        buf.extend_from_slice(&csum.to_be_bytes());
        assert!(verify_checksum(&buf));
    }
}
