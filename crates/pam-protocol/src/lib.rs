//! The migration/handover protocol as an explicit, pure state machine —
//! plus the exhaustive small-scope model checker that pins its safety.
//!
//! The paper's core guarantee — zero-loss, order-preserving vNF state
//! migration under live traffic — used to live implicitly inside
//! `pam-runtime`'s `ChainRuntime` and was pinned only by property-test
//! *sampling*. This crate extracts the protocol into [`HandoverState`] with a
//! pure [`HandoverState::step`] transition function, and the shipped runtime
//! drives exactly these transitions, so the checked model and the executing
//! code cannot drift apart.
//!
//! Three handover kinds share the machine (see [`HandoverKind`]):
//!
//! * **stop-and-copy** — pause, ship everything, resume (one freeze round);
//! * **iterative pre-copy** — a snapshot round plus dirty rounds while the
//!   source serves, then a freeze of the residual dirty set, with abort /
//!   rollback arcs before the point of no return;
//! * **scale-out handoff** — the fleet's non-blocking cross-server state
//!   slice transfer behind flow re-steering.
//!
//! The [`checker`] module enumerates — exhaustively, by breadth-first search
//! over *all* interleavings of bounded scenarios (few flows, few writes,
//! bounded rounds, a bounded link-reorder window, abort/crash at every
//! phase) — every reachable state of the protocol composed with a small
//! world model (source, target, in-flight link messages), and asserts the
//! safety invariants the runtime relies on: no lost acked state, no
//! duplicate or regressive apply, per-flow ordering, bounded blackout, and
//! no stuck non-final state. The `model_check` binary runs the suite and
//! reports the explored-state counts (CI gates on it).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod checker;
pub mod machine;

pub use checker::{check, ApplyPolicy, CheckOutcome, Scenario, Violation};
pub use machine::{
    Action, Actions, DivergencePolicy, Event, HandoverKind, HandoverState, Phase, ProtocolConfig,
    ProtocolError,
};
