//! Exhaustive small-scope model checking of the handover protocol.
//!
//! The checker composes the pure [`HandoverState`] machine with a small
//! *world model* — a source flow table with per-flow version counters, a
//! staged target, and an in-flight link modelled by
//! [`pam_sim::ReorderBuffer`] (bounded reorder window; `0` = FIFO) — and
//! then enumerates, by breadth-first search, **every** reachable state of
//! every interleaving the bounded scenario permits: packet writes dirtying
//! flows, round completions, out-of-order link deliveries, operator aborts
//! and target crashes at every phase.
//!
//! Unlike the proptest suites (which *sample* interleavings), the explored
//! state space is exhaustive within the scenario's bounds, in the style of
//! TLA+ small-scope checking (cf. the IBC packet-delay spec): if an
//! invariant can be violated within the bounds, the checker finds it and
//! returns the violating trace.
//!
//! Checked invariants:
//!
//! * **I1 per-flow order** — a flow's state version at the target never
//!   regresses (the paper's order-preserving guarantee);
//! * **I2 no duplicate apply** — no transferred round is applied twice to
//!   the same flow;
//! * **I3 no lost acked state** — at quiescence after `Done`, the target
//!   holds every flow at exactly the version the source last exported
//!   (zero-loss); after `Aborted`, the source is serving and intact and the
//!   staged target is discarded;
//! * **I4 bounded blackout** — a pre-copy freeze never ships more than the
//!   convergence bound, unless the round cap forced it *and* the divergence
//!   policy permits forcing (under [`DivergencePolicy::Abort`], never);
//! * **I5 no stuck state** — every non-final state has at least one enabled
//!   transition (the protocol cannot wedge).
//!
//! The world model's *apply policy* is part of the scenario:
//! [`ApplyPolicy::RoundGuarded`] (a delta only applies if its round is newer
//! than what the target holds — the shipped import discipline) passes every
//! scenario; [`ApplyPolicy::LastArrival`] (blind overwrite) exists to prove
//! the checker has teeth — under a reordering link, or when re-steered
//! packets re-create state ahead of a scale-out slice, it reproduces
//! exactly the overtaking-bug class the PCIe FIFO clamp of PR 3 fixed, and
//! the checker returns the counterexample trace.

use crate::machine::{
    Action, DivergencePolicy, Event, HandoverKind, HandoverState, Phase, ProtocolConfig,
};
use pam_sim::ReorderBuffer;
use std::collections::BTreeSet;
use std::collections::VecDeque;

/// The checker's hard cap on modelled flows (scenario `flows` must not
/// exceed it).
pub const MAX_FLOWS: usize = 3;

/// The sentinel round number recording "this target entry was re-created by
/// a re-steered packet, newer than any transferred round".
const RECREATED_ROUND: u8 = 200;

/// How the model target applies an arriving state message to a flow entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyPolicy {
    /// Apply only if the message's round is newer than the round that last
    /// wrote the entry. This is the shipped discipline (order-exact
    /// delta import keyed by monotone rounds) and is safe under reorder.
    RoundGuarded,
    /// Blind overwrite: whatever arrives last wins. Unsafe under any
    /// reordering — kept so the checker's teeth are themselves pinned by
    /// tests (it must find the counterexample).
    LastArrival,
}

impl ApplyPolicy {
    /// The machine-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ApplyPolicy::RoundGuarded => "round_guarded",
            ApplyPolicy::LastArrival => "last_arrival",
        }
    }
}

/// One bounded scenario: the protocol knobs plus the world-model bounds the
/// checker exhausts.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario name (appears in reports and CI summaries).
    pub name: String,
    /// Which handover sub-protocol runs.
    pub kind: HandoverKind,
    /// Modelled flows (at most [`MAX_FLOWS`]).
    pub flows: usize,
    /// How many times each flow may be written (dirtied) during the run.
    pub max_writes_per_flow: u8,
    /// Pre-copy round cap (the snapshot counts).
    pub max_rounds: usize,
    /// Pre-copy convergence bound, in flows.
    pub convergence_flows: usize,
    /// What happens at the round cap without convergence.
    pub on_divergence: DivergencePolicy,
    /// Link reorder window (`0` = FIFO).
    pub reorder_window: usize,
    /// Whether the operator may abort in every abortable phase.
    pub enable_abort: bool,
    /// Whether the target may crash in every non-final phase.
    pub enable_crash: bool,
    /// The target's apply discipline.
    pub apply_policy: ApplyPolicy,
}

impl Scenario {
    /// A pre-copy scenario with the given bounds and safe apply policy;
    /// tune fields afterwards as needed.
    pub fn pre_copy(name: &str, flows: usize, reorder_window: usize) -> Self {
        Scenario {
            name: name.to_owned(),
            kind: HandoverKind::PreCopy,
            flows,
            max_writes_per_flow: 2,
            max_rounds: 3,
            convergence_flows: 1,
            on_divergence: DivergencePolicy::ForceFreeze,
            reorder_window,
            enable_abort: false,
            enable_crash: false,
            apply_policy: ApplyPolicy::RoundGuarded,
        }
    }

    /// A stop-and-copy scenario (no serving rounds, whole-state freeze).
    pub fn stop_and_copy(name: &str, flows: usize, reorder_window: usize) -> Self {
        Scenario {
            kind: HandoverKind::StopAndCopy,
            ..Scenario::pre_copy(name, flows, reorder_window)
        }
    }

    /// A fleet scale-out handoff scenario (re-steered packets may re-create
    /// state at the recipient while the slice is in flight).
    pub fn scale_out_handoff(name: &str, flows: usize, reorder_window: usize) -> Self {
        Scenario {
            kind: HandoverKind::ScaleOutHandoff,
            ..Scenario::pre_copy(name, flows, reorder_window)
        }
    }

    fn protocol_config(&self) -> ProtocolConfig {
        match self.kind {
            HandoverKind::StopAndCopy => ProtocolConfig::stop_and_copy(),
            HandoverKind::ScaleOutHandoff => ProtocolConfig::scale_out_handoff(),
            HandoverKind::PreCopy => ProtocolConfig::pre_copy(
                self.max_rounds,
                self.convergence_flows,
                self.on_divergence,
            ),
        }
    }
}

/// A state message in flight on the modelled link.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Msg {
    /// The round that exported this message (monotone per handover).
    round: u8,
    /// True for the freeze/stop-and-copy payload (its delivery acks the
    /// switchover).
    is_freeze: bool,
    /// Version carried per flow; `0` means the flow is not in this message.
    payload: [u8; MAX_FLOWS],
}

/// The full model state: protocol machine + world. Small, `Ord`-erable and
/// hashable so BFS can deduplicate millions of them.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ModelState {
    protocol: HandoverState,
    /// Source flow-table versions (index < scenario.flows; 1 = initial).
    source: [u8; MAX_FLOWS],
    /// Writes each flow may still receive.
    writes_left: [u8; MAX_FLOWS],
    /// Flows dirtied since the last export.
    dirty: [bool; MAX_FLOWS],
    /// Highest version of each flow ever exported (what "acked state" the
    /// target must eventually hold).
    exported: [u8; MAX_FLOWS],
    source_paused: bool,
    /// Target flow-table versions (0 = absent).
    target: [u8; MAX_FLOWS],
    /// The round that last wrote each target entry.
    target_round: [u8; MAX_FLOWS],
    /// False once the staged target was discarded (abort/crash).
    target_alive: bool,
    link: ReorderBuffer<Msg>,
    /// The current serving round was sent but its completion has not fired.
    round_in_flight: bool,
    freeze_sent: bool,
    /// The freeze payload landed at the target (acks [`Event::FreezeDelivered`]).
    freeze_applied: bool,
    /// Flows the freeze payload carried (blackout-critical set).
    freeze_flows: u8,
}

/// One step label of a trace (rendered lazily into strings on violation).
#[derive(Debug, Clone, Copy)]
enum StepLabel {
    Init,
    Start,
    SourceWrite(usize),
    TargetWrite(usize),
    RoundComplete(usize),
    FreezeComplete,
    Deliver {
        slot: usize,
        round: u8,
        freeze: bool,
    },
    Abort,
    TargetCrash,
}

impl std::fmt::Display for StepLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepLabel::Init => write!(f, "init"),
            StepLabel::Start => write!(f, "start"),
            StepLabel::SourceWrite(flow) => write!(f, "source write flow{flow}"),
            StepLabel::TargetWrite(flow) => {
                write!(f, "re-steered packet re-creates flow{flow} at target")
            }
            StepLabel::RoundComplete(round) => write!(f, "round {round} transfer completes"),
            StepLabel::FreezeComplete => write!(f, "freeze switchover completes"),
            StepLabel::Deliver {
                slot,
                round,
                freeze,
            } => write!(
                f,
                "link delivers {} round {round} (queue slot {slot})",
                if *freeze { "freeze" } else { "copy" }
            ),
            StepLabel::Abort => write!(f, "operator abort"),
            StepLabel::TargetCrash => write!(f, "target crash"),
        }
    }
}

/// An invariant violation with the interleaving that reached it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke (short identifier, e.g. `per-flow-order`).
    pub invariant: &'static str,
    /// What exactly went wrong in the violating state.
    pub detail: String,
    /// The event trace from the initial state to the violation, one line
    /// per step.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "invariant {} violated: {}", self.invariant, self.detail)?;
        for (index, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {index:>3}: {step}")?;
        }
        Ok(())
    }
}

/// The result of exhaustively checking one scenario.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Distinct model states explored (the exhaustive small-scope space).
    pub explored: u64,
    /// Terminal (quiescent final) states among them.
    pub terminal: u64,
    /// The first violation found, if any (BFS order, so a shortest trace).
    pub violation: Option<Violation>,
}

impl CheckOutcome {
    /// True when every reachable state satisfied every invariant.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

struct Node {
    state: ModelState,
    parent: usize,
    label: StepLabel,
}

/// The BFS worklist: arena of deduplicated states plus the frontier.
struct Search {
    arena: Vec<Node>,
    visited: BTreeSet<ModelState>,
    frontier: VecDeque<usize>,
}

impl Search {
    fn trace_to(&self, index: usize) -> Vec<String> {
        let mut steps = Vec::new();
        let mut at = index;
        loop {
            let node = &self.arena[at];
            steps.push(node.label.to_string());
            if at == node.parent {
                break;
            }
            at = node.parent;
        }
        steps.reverse();
        steps
    }

    fn push(&mut self, state: ModelState, parent: usize, label: StepLabel) {
        if self.visited.insert(state.clone()) {
            self.arena.push(Node {
                state,
                parent,
                label,
            });
            self.frontier.push_back(self.arena.len() - 1);
        }
    }
}

/// Exhaustively explores `scenario` and reports the explored-state count
/// and the first invariant violation (if any).
pub fn check(scenario: &Scenario) -> CheckOutcome {
    assert!(
        scenario.flows >= 1 && scenario.flows <= MAX_FLOWS,
        "scenario flows must be in 1..={MAX_FLOWS}"
    );
    assert!(
        scenario.max_rounds + 2 < RECREATED_ROUND as usize,
        "round bound collides with the recreation sentinel"
    );

    let mut initial = ModelState {
        protocol: HandoverState::new(scenario.protocol_config()),
        source: [0; MAX_FLOWS],
        writes_left: [0; MAX_FLOWS],
        dirty: [false; MAX_FLOWS],
        exported: [0; MAX_FLOWS],
        source_paused: false,
        target: [0; MAX_FLOWS],
        target_round: [0; MAX_FLOWS],
        target_alive: true,
        link: ReorderBuffer::new(scenario.reorder_window),
        round_in_flight: false,
        freeze_sent: false,
        freeze_applied: false,
        freeze_flows: 0,
    };
    for flow in 0..scenario.flows {
        initial.source[flow] = 1;
        initial.writes_left[flow] = scenario.max_writes_per_flow;
    }

    let mut search = Search {
        arena: Vec::new(),
        visited: BTreeSet::new(),
        frontier: VecDeque::new(),
    };
    search.visited.insert(initial.clone());
    search.arena.push(Node {
        state: initial,
        parent: 0,
        label: StepLabel::Init,
    });
    search.frontier.push_back(0);

    let mut terminal = 0u64;
    let mut violation: Option<Violation> = None;

    while let Some(index) = search.frontier.pop_front() {
        let state = search.arena[index].state.clone();

        if let Some(detail) = check_state_invariants(scenario, &state) {
            violation = Some(Violation {
                invariant: detail.0,
                detail: detail.1,
                trace: search.trace_to(index),
            });
            break;
        }

        if is_terminal(&state) {
            terminal += 1;
            continue;
        }

        let before = search.arena.len();
        if let Some((invariant, detail, label)) = expand(scenario, &state, index, &mut search) {
            let mut trace = search.trace_to(index);
            trace.push(label.to_string());
            violation = Some(Violation {
                invariant,
                detail,
                trace,
            });
            break;
        }
        let frontier_grew = search.arena.len() > before;
        let rediscovered_only = !frontier_grew && has_enabled_transition(scenario, &state);
        if !frontier_grew && !rediscovered_only {
            violation = Some(Violation {
                invariant: "no-stuck-state",
                detail: format!(
                    "non-final state has no enabled transition (phase {})",
                    state.protocol.phase
                ),
                trace: search.trace_to(index),
            });
            break;
        }
    }

    CheckOutcome {
        explored: search.arena.len() as u64,
        terminal,
        violation,
    }
}

/// A state is terminal when the protocol is final and the world is
/// quiescent (nothing left in flight).
fn is_terminal(state: &ModelState) -> bool {
    state.protocol.phase.is_final() && state.link.is_empty() && !state.round_in_flight
}

/// Invariants that must hold of *every* reachable state (I3 at terminals,
/// I4 whenever frozen). Returns `(invariant, detail)` on violation.
fn check_state_invariants(
    scenario: &Scenario,
    state: &ModelState,
) -> Option<(&'static str, String)> {
    // I4 — bounded blackout (pre-copy only; stop-and-copy's blackout is by
    // definition the whole state).
    if scenario.kind == HandoverKind::PreCopy && state.freeze_sent {
        let bounded = state.freeze_flows as usize <= scenario.convergence_flows;
        let cap_hit = state.protocol.rounds_completed >= scenario.max_rounds;
        let forced_allowed = scenario.on_divergence == DivergencePolicy::ForceFreeze && cap_hit;
        if !bounded && !forced_allowed {
            return Some((
                "bounded-blackout",
                format!(
                    "freeze shipped {} flows > convergence bound {} (rounds_completed {}, policy {})",
                    state.freeze_flows,
                    scenario.convergence_flows,
                    state.protocol.rounds_completed,
                    scenario.on_divergence
                ),
            ));
        }
    }

    if !is_terminal(state) {
        return None;
    }
    match state.protocol.phase {
        Phase::Done => {
            // I3 — zero loss: the target holds every flow at the exact
            // version the source last exported (which, at a freeze, is the
            // source's final version) or newer re-created state.
            if !state.source_paused && scenario.kind == HandoverKind::PreCopy {
                return Some((
                    "no-lost-acked-state",
                    "pre-copy done without the source ever freezing".into(),
                ));
            }
            for flow in 0..scenario.flows {
                if state.target[flow] < state.exported[flow] {
                    return Some((
                        "no-lost-acked-state",
                        format!(
                            "done, but target holds flow{flow} at v{} < exported v{}",
                            state.target[flow], state.exported[flow]
                        ),
                    ));
                }
            }
            None
        }
        Phase::Aborted => {
            // I3 (rollback half) — the source serves again, intact; the
            // staged target is gone.
            if state.source_paused {
                return Some((
                    "rollback-resumes-source",
                    "aborted, but the source is still paused".into(),
                ));
            }
            if state.target_alive
                && state.target.iter().any(|&v| v > 0)
                && scenario.kind != HandoverKind::ScaleOutHandoff
            {
                return Some((
                    "rollback-discards-target",
                    "aborted, but the staged target still holds state".into(),
                ));
            }
            None
        }
        _ => None,
    }
}

/// True when `state` has at least one enabled transition (used to tell a
/// genuinely stuck state from one whose successors were all visited).
fn has_enabled_transition(scenario: &Scenario, state: &ModelState) -> bool {
    !enabled_labels(scenario, state).is_empty()
}

/// The enabled transitions of `state`, as labels the expansion interprets.
fn enabled_labels(scenario: &Scenario, state: &ModelState) -> Vec<StepLabel> {
    let mut labels = Vec::new();
    let phase = state.protocol.phase;

    if phase == Phase::Serving {
        labels.push(StepLabel::Start);
        return labels;
    }

    let serving_round = matches!(phase, Phase::Snapshot | Phase::DirtyRound(_));

    // Source writes: pre-copy keeps serving (and dirtying) until the freeze.
    if scenario.kind == HandoverKind::PreCopy && serving_round && !state.source_paused {
        for flow in 0..scenario.flows {
            if state.writes_left[flow] > 0 {
                labels.push(StepLabel::SourceWrite(flow));
            }
        }
    }
    // Re-steered packets re-creating state at the recipient while the
    // handoff slice is in flight (they beat their state).
    if scenario.kind == HandoverKind::ScaleOutHandoff && serving_round && state.target_alive {
        for flow in 0..scenario.flows {
            if state.writes_left[flow] > 0 {
                labels.push(StepLabel::TargetWrite(flow));
            }
        }
    }

    // Round completion. Pre-copy rounds are non-blocking: the source starts
    // the next round once the transfer is sent (delivery may lag, modelling
    // pipelined rounds over a delayed link). The handoff's single round
    // completes only when the slice actually landed (its delivery is the
    // ack that makes the recipient authoritative).
    if serving_round && state.round_in_flight {
        let acked = match scenario.kind {
            HandoverKind::PreCopy => true,
            _ => state.link.is_empty(),
        };
        if acked {
            labels.push(StepLabel::RoundComplete(
                state.protocol.rounds_completed + 1,
            ));
        }
    }

    // Freeze switchover: requires the freeze payload to have landed (the
    // control plane's completion is causally after the residual's arrival).
    if phase == Phase::Freeze && state.freeze_sent && state.freeze_applied {
        labels.push(StepLabel::FreezeComplete);
    }

    // Link deliveries: every slot the reorder window allows.
    for slot in 0..state.link.deliverable() {
        if let Some(msg) = state.link.peek(slot) {
            labels.push(StepLabel::Deliver {
                slot,
                round: msg.round,
                freeze: msg.is_freeze,
            });
        }
    }

    // Operator abort — legal before the freeze only.
    if scenario.enable_abort && serving_round {
        labels.push(StepLabel::Abort);
    }
    // Target crash — any non-final in-progress phase, including the freeze.
    if scenario.enable_crash && (serving_round || phase == Phase::Freeze) {
        labels.push(StepLabel::TargetCrash);
    }

    labels
}

/// Expands `state` into every successor, pushing unvisited ones. Returns a
/// violation (with the offending step) if applying a transition breaks an
/// apply-time invariant.
fn expand(
    scenario: &Scenario,
    state: &ModelState,
    parent: usize,
    search: &mut Search,
) -> Option<(&'static str, String, StepLabel)> {
    for label in enabled_labels(scenario, state) {
        let mut next = state.clone();
        match label {
            StepLabel::Init => unreachable!("init is never enabled"),
            StepLabel::Start => {
                let (proto, actions) = match next.protocol.step(Event::Start) {
                    Ok(ok) => ok,
                    Err(e) => return Some(("machine-accepts-start", e.to_string(), label)),
                };
                next.protocol = proto;
                debug_assert!(actions.contains(Action::ExportFull));
                let is_freeze = actions.contains(Action::PauseSource);
                let mut payload = [0u8; MAX_FLOWS];
                let mut carried = 0u8;
                for (flow, cell) in payload.iter_mut().enumerate().take(scenario.flows) {
                    *cell = next.source[flow];
                    next.exported[flow] = next.source[flow];
                    carried += 1;
                }
                next.link.send(Msg {
                    round: 1,
                    is_freeze,
                    payload,
                });
                next.dirty = [false; MAX_FLOWS];
                if is_freeze {
                    next.source_paused = true;
                    next.freeze_sent = true;
                    next.freeze_flows = carried;
                } else {
                    next.round_in_flight = true;
                }
            }
            StepLabel::SourceWrite(flow) => {
                next.source[flow] += 1;
                next.writes_left[flow] -= 1;
                next.dirty[flow] = true;
            }
            StepLabel::TargetWrite(flow) => {
                // The re-steered packet applies the write the source would
                // have applied: strictly newer than anything exported.
                next.target[flow] = next.source[flow] + 1;
                next.target_round[flow] = RECREATED_ROUND;
                next.writes_left[flow] -= 1;
                // The recipient now owns the newest version of this flow.
                next.exported[flow] = next.exported[flow].max(next.target[flow]);
            }
            StepLabel::RoundComplete(_) => {
                let dirty_count = next.dirty.iter().filter(|&&d| d).count();
                let (proto, actions) = match next
                    .protocol
                    .step(Event::RoundDelivered { dirty: dirty_count })
                {
                    Ok(ok) => ok,
                    Err(e) => return Some(("machine-accepts-round", e.to_string(), label)),
                };
                next.protocol = proto;
                next.round_in_flight = false;
                if actions.contains(Action::ExportDirty) {
                    let round = (next.protocol.rounds_completed + 1) as u8;
                    let mut payload = [0u8; MAX_FLOWS];
                    let mut carried = 0u8;
                    for (flow, cell) in payload.iter_mut().enumerate().take(scenario.flows) {
                        if next.dirty[flow] {
                            *cell = next.source[flow];
                            next.exported[flow] = next.source[flow];
                            carried += 1;
                        }
                    }
                    next.dirty = [false; MAX_FLOWS];
                    next.link.send(Msg {
                        round,
                        is_freeze: actions.contains(Action::PauseSource),
                        payload,
                    });
                    if actions.contains(Action::PauseSource) {
                        next.source_paused = true;
                        next.freeze_sent = true;
                        next.freeze_flows = carried;
                    } else {
                        next.round_in_flight = true;
                    }
                } else if actions.contains(Action::DiscardTarget) {
                    // Divergence policy rolled the migration back.
                    next.target_alive = false;
                    next.target = [0; MAX_FLOWS];
                    next.target_round = [0; MAX_FLOWS];
                }
                // ActivateTarget (handoff Done) needs no world change: the
                // slice already landed (delivery gated the completion).
            }
            StepLabel::FreezeComplete => {
                let (proto, actions) = match next.protocol.step(Event::FreezeDelivered) {
                    Ok(ok) => ok,
                    Err(e) => return Some(("machine-accepts-freeze", e.to_string(), label)),
                };
                next.protocol = proto;
                debug_assert!(actions.contains(Action::ActivateTarget));
            }
            StepLabel::Deliver { slot, .. } => {
                let Some(msg) = next.link.deliver(slot) else {
                    return Some((
                        "link-delivery",
                        "reorder buffer refused an enumerated delivery".into(),
                        label,
                    ));
                };
                // Stale messages to a discarded target (or after rollback)
                // are dropped on the floor, exactly like the runtime's
                // stale MigrationRound events.
                let stale = !next.target_alive || next.protocol.phase == Phase::Aborted;
                if !stale {
                    for flow in 0..scenario.flows {
                        let version = msg.payload[flow];
                        if version == 0 {
                            continue;
                        }
                        let apply = match scenario.apply_policy {
                            ApplyPolicy::RoundGuarded => msg.round > next.target_round[flow],
                            ApplyPolicy::LastArrival => true,
                        };
                        if !apply {
                            continue;
                        }
                        // I1 — per-flow order: the applied version must
                        // never regress.
                        if version < next.target[flow] {
                            return Some((
                                "per-flow-order",
                                format!(
                                    "round {} delivers flow{flow} v{version} over newer v{} at the target",
                                    msg.round, next.target[flow]
                                ),
                                label,
                            ));
                        }
                        // I2 — no duplicate apply: a round may write a flow
                        // at most once, and rounds apply in increasing
                        // order per flow under the guard.
                        if msg.round == next.target_round[flow] {
                            return Some((
                                "no-duplicate-apply",
                                format!("round {} applied twice to flow{flow}", msg.round),
                                label,
                            ));
                        }
                        next.target[flow] = version;
                        next.target_round[flow] = msg.round;
                    }
                    if msg.is_freeze {
                        next.freeze_applied = true;
                    }
                }
            }
            StepLabel::Abort => {
                let (proto, actions) = match next.protocol.step(Event::Abort) {
                    Ok(ok) => ok,
                    Err(e) => return Some(("machine-accepts-abort", e.to_string(), label)),
                };
                next.protocol = proto;
                debug_assert!(actions.contains(Action::DiscardTarget));
                next.target_alive = false;
                next.target = [0; MAX_FLOWS];
                next.target_round = [0; MAX_FLOWS];
                next.round_in_flight = false;
            }
            StepLabel::TargetCrash => {
                let (proto, actions) = match next.protocol.step(Event::TargetCrash) {
                    Ok(ok) => ok,
                    Err(e) => return Some(("machine-accepts-crash", e.to_string(), label)),
                };
                next.protocol = proto;
                next.target_alive = false;
                next.target = [0; MAX_FLOWS];
                next.target_round = [0; MAX_FLOWS];
                next.round_in_flight = false;
                if actions.contains(Action::ResumeSource) {
                    next.source_paused = false;
                }
            }
        }
        search.push(next, parent, label);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_copy_fifo_space_is_clean_and_nontrivial() {
        let scenario = Scenario::pre_copy("pre_copy/w0", 2, 0);
        let outcome = check(&scenario);
        assert!(outcome.passed(), "{:?}", outcome.violation);
        assert!(outcome.explored > 100, "explored {}", outcome.explored);
        assert!(outcome.terminal > 0);
    }

    #[test]
    fn pre_copy_survives_reorder_abort_and_crash() {
        let mut scenario = Scenario::pre_copy("pre_copy/w2/chaos", 3, 2);
        scenario.enable_abort = true;
        scenario.enable_crash = true;
        let outcome = check(&scenario);
        assert!(outcome.passed(), "{:?}", outcome.violation);
        assert!(outcome.explored > 1000, "explored {}", outcome.explored);
    }

    #[test]
    fn abort_divergence_policy_keeps_blackout_bounded() {
        let mut scenario = Scenario::pre_copy("pre_copy/abort-policy", 3, 1);
        scenario.on_divergence = DivergencePolicy::Abort;
        scenario.convergence_flows = 0;
        scenario.max_rounds = 2;
        let outcome = check(&scenario);
        assert!(outcome.passed(), "{:?}", outcome.violation);
    }

    #[test]
    fn last_arrival_under_reorder_is_caught_with_a_trace() {
        // The counterexample the checker found on the way to the abort arc:
        // with blind last-arrival applies, a reordered link lets an older
        // round overtake a newer one and regress a flow — the same bug
        // class as the PCIe FIFO clamp fix of PR 3. Pinned here so the
        // checker's teeth never dull.
        let mut scenario = Scenario::pre_copy("pre_copy/last-arrival/w1", 2, 1);
        scenario.apply_policy = ApplyPolicy::LastArrival;
        let outcome = check(&scenario);
        let violation = outcome
            .violation
            .expect("checker must find the reorder bug");
        assert_eq!(violation.invariant, "per-flow-order");
        assert!(violation.trace.len() > 3);
        assert!(violation.to_string().contains("per-flow-order"));
    }

    #[test]
    fn last_arrival_on_fifo_link_is_safe_for_pre_copy() {
        // On a FIFO link (window 0) rounds arrive in order, so even blind
        // applies cannot regress — which is exactly why the runtime's PCIe
        // FIFO clamp makes the shipped import discipline sufficient.
        let mut scenario = Scenario::pre_copy("pre_copy/last-arrival/w0", 2, 0);
        scenario.apply_policy = ApplyPolicy::LastArrival;
        let outcome = check(&scenario);
        assert!(outcome.passed(), "{:?}", outcome.violation);
    }

    #[test]
    fn handoff_recreated_state_needs_the_round_guard() {
        // Re-steered packets can beat their state to the recipient; a blind
        // apply then clobbers the newer re-created entry even on a FIFO
        // link. The round guard (recreated state outranks any transferred
        // round) keeps it safe.
        let mut naive = Scenario::scale_out_handoff("handoff/last-arrival", 2, 0);
        naive.apply_policy = ApplyPolicy::LastArrival;
        let outcome = check(&naive);
        let violation = outcome.violation.expect("blind handoff apply must fail");
        assert_eq!(violation.invariant, "per-flow-order");

        let guarded = Scenario::scale_out_handoff("handoff/guarded", 2, 0);
        let outcome = check(&guarded);
        assert!(outcome.passed(), "{:?}", outcome.violation);
    }

    #[test]
    fn stop_and_copy_space_is_clean() {
        let mut scenario = Scenario::stop_and_copy("stop_and_copy/w1", 2, 1);
        scenario.enable_crash = true;
        let outcome = check(&scenario);
        assert!(outcome.passed(), "{:?}", outcome.violation);
        assert!(outcome.terminal > 0);
    }

    #[test]
    fn explored_count_is_deterministic() {
        let scenario = Scenario::pre_copy("determinism", 2, 1);
        let first = check(&scenario);
        let second = check(&scenario);
        assert_eq!(first.explored, second.explored);
        assert_eq!(first.terminal, second.terminal);
    }
}
