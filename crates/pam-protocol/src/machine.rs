//! The handover protocol state machine.
//!
//! [`HandoverState::step`] is a *pure* function `(state, event) -> (state,
//! actions)`: it performs no I/O, touches no clocks and allocates nothing,
//! which is what makes it exhaustively checkable (see [`crate::checker`])
//! while still being the exact transition relation the runtime executes.
//!
//! ```text
//!                    ┌───────────────────────────────────────────────┐
//!                    │                (pre-copy)                     │
//!  Serving ──Start──▶ Snapshot ──RoundDelivered──▶ DirtyRound(n) ──┐ │
//!     │                  │   ▲                        │    │       │ │
//!     │                  │   └──────RoundDelivered────┘    │       │ │
//!     │                  │      (dirty > convergence)      │       │ │
//!     │                  │                                 │       │ │
//!     │                  ├──── converged / round cap ──────┘       │ │
//!     │                  ▼                                         │ │
//!     │               Freeze ──FreezeDelivered──▶ Done             │ │
//!     │                  │                                         │ │
//!     │                  │ TargetCrash / DeltaRejected             │ │
//!     │                  ▼                                         │ │
//!     │              Aborted ◀── Abort / TargetCrash / ────────────┘ │
//!     │                          DeltaRejected / divergence policy   │
//!     └──Start (stop-and-copy)──▶ Freeze ── ... ─────────────────────┘
//! ```
//!
//! The abort/rollback arcs keep the source authoritative: before the freeze
//! the source never stopped serving, so aborting merely discards the staged
//! target; during the freeze the source is paused but its state is intact,
//! so a target crash rolls back by resuming the source. Only
//! [`Action::ActivateTarget`] (the `Done` transition) retires the source —
//! that is the protocol's point of no return.

use serde::{Deserialize, Serialize};

/// Which handover sub-protocol a [`HandoverState`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HandoverKind {
    /// Pause the vNF, ship its whole state in one freeze round, resume on
    /// the target. `Start` goes straight to [`Phase::Freeze`].
    StopAndCopy,
    /// Iterative pre-copy: snapshot + dirty rounds while the source serves,
    /// then a freeze of the residual dirty set.
    PreCopy,
    /// The fleet's cross-server scale-out handoff: one non-blocking state
    /// slice transfer behind flow re-steering; the source never pauses
    /// (re-steered packets that beat their state re-create it, so there is
    /// no freeze phase at all).
    ScaleOutHandoff,
}

impl HandoverKind {
    /// All kinds, in report order.
    pub const ALL: [HandoverKind; 3] = [
        HandoverKind::StopAndCopy,
        HandoverKind::PreCopy,
        HandoverKind::ScaleOutHandoff,
    ];

    /// The machine-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            HandoverKind::StopAndCopy => "stop_and_copy",
            HandoverKind::PreCopy => "pre_copy",
            HandoverKind::ScaleOutHandoff => "scale_out_handoff",
        }
    }
}

/// The phase of a handover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// No handover in progress; the source serves alone.
    Serving,
    /// The full snapshot (pre-copy round 1, or the handoff's state slice) is
    /// in flight while the source keeps serving.
    Snapshot,
    /// Pre-copy dirty round `n` (`n >= 2`) is in flight; the source keeps
    /// serving and dirtying flows.
    DirtyRound(u32),
    /// The source is paused; the residual dirty set (or, under
    /// stop-and-copy, the whole state) is in flight. This is the blackout
    /// window.
    Freeze,
    /// The target is authoritative; the handover succeeded. Final.
    Done,
    /// The handover was rolled back: the staged target was discarded and the
    /// source serves (again). Final.
    Aborted,
}

impl Phase {
    /// True for the two terminal phases.
    pub fn is_final(self) -> bool {
        matches!(self, Phase::Done | Phase::Aborted)
    }

    /// A short machine-readable name (round numbers elided).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Serving => "serving",
            Phase::Snapshot => "snapshot",
            Phase::DirtyRound(_) => "dirty_round",
            Phase::Freeze => "freeze",
            Phase::Done => "done",
            Phase::Aborted => "aborted",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::DirtyRound(n) => write!(f, "dirty_round({n})"),
            other => write!(f, "{}", other.name()),
        }
    }
}

/// An input to [`HandoverState::step`].
///
/// Events describe what *happened* (a transfer completed, the operator
/// aborted, the target crashed); the machine answers with what must be done
/// next ([`Action`]s) and the successor state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// Begin the handover (only legal in [`Phase::Serving`]).
    Start,
    /// The in-flight snapshot/dirty round finished its transfer; `dirty` is
    /// the number of flows dirtied at the source since that round's export.
    RoundDelivered {
        /// Flows dirtied since the completed round was exported.
        dirty: usize,
    },
    /// The freeze round's residual transfer (and control-plane switchover)
    /// completed: the target takes over.
    FreezeDelivered,
    /// The target rejected an imported state blob or delta (corruption).
    DeltaRejected,
    /// Operator / policy abort request. Legal before the freeze only — the
    /// freeze is the point of no return for voluntary aborts.
    Abort,
    /// The staged target crashed. Legal in every non-final in-progress
    /// phase, including the freeze (the source is paused there but intact,
    /// so the machine rolls back and resumes it).
    TargetCrash,
}

impl Event {
    /// A short machine-readable name (payloads elided).
    pub fn name(self) -> &'static str {
        match self {
            Event::Start => "start",
            Event::RoundDelivered { .. } => "round_delivered",
            Event::FreezeDelivered => "freeze_delivered",
            Event::DeltaRejected => "delta_rejected",
            Event::Abort => "abort",
            Event::TargetCrash => "target_crash",
        }
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// An obligation the runtime must discharge when a transition fires.
///
/// Actions are *instructions to the environment*: the pure machine never
/// touches flow tables or links itself. The runtime (and the model checker's
/// world model) interpret them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Export the source's full state and ship it (snapshot round, or the
    /// stop-and-copy freeze payload, or the handoff slice).
    ExportFull,
    /// Export the flows dirtied since the last export and ship them as the
    /// next round (or as the freeze's residual payload).
    ExportDirty,
    /// Pause the source: the blackout begins.
    PauseSource,
    /// The target becomes authoritative; retire the source instance.
    ActivateTarget,
    /// Discard the staged target and any state it accumulated.
    DiscardTarget,
    /// Resume the paused source (rollback out of a freeze).
    ResumeSource,
}

/// A small fixed-capacity action list (at most three actions accompany any
/// transition), cheap to copy and free of heap allocation so the checker can
/// store and compare millions of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Actions {
    slots: [Option<Action>; 3],
}

impl Actions {
    /// No actions.
    pub const EMPTY: Actions = Actions { slots: [None; 3] };

    fn of(actions: &[Action]) -> Actions {
        let mut out = Actions::EMPTY;
        for (slot, action) in out.slots.iter_mut().zip(actions) {
            *slot = Some(*action);
        }
        debug_assert!(actions.len() <= out.slots.len());
        out
    }

    /// The actions, in the order the runtime must perform them.
    pub fn iter(&self) -> impl Iterator<Item = Action> + '_ {
        self.slots.iter().filter_map(|slot| *slot)
    }

    /// True when `action` is among the obligations.
    pub fn contains(&self, action: Action) -> bool {
        self.slots.contains(&Some(action))
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_some()).count()
    }

    /// True when there is nothing to do.
    pub fn is_empty(&self) -> bool {
        self.slots[0].is_none()
    }
}

/// A rejected [`HandoverState::step`]: the event is not legal in the current
/// phase. The state is unchanged (step takes `&self`), so illegal events are
/// side-effect-free by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolError {
    /// The phase the machine was in.
    pub phase: Phase,
    /// The rejected event.
    pub event: Event,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal handover event {} in phase {}",
            self.event, self.phase
        )
    }
}

impl std::error::Error for ProtocolError {}

/// What to do when pre-copy hits its round cap without converging (the dirty
/// set is still larger than the convergence bound after `max_rounds` rounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DivergencePolicy {
    /// Freeze anyway and eat the (unbounded) blackout of shipping the whole
    /// residual dirty set. This is the classic pre-copy fallback.
    ForceFreeze,
    /// Roll the migration back instead: discard the staged target and keep
    /// serving from the source. The blackout stays bounded by the
    /// convergence knob — a freeze only ever ships a converged residual.
    Abort,
}

impl DivergencePolicy {
    /// Both policies, in report order.
    pub const ALL: [DivergencePolicy; 2] = [DivergencePolicy::ForceFreeze, DivergencePolicy::Abort];

    /// The machine-readable name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            DivergencePolicy::ForceFreeze => "force_freeze",
            DivergencePolicy::Abort => "abort",
        }
    }

    /// Parses a CLI policy name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for DivergencePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The static knobs of one handover (mirrors the runtime's
/// `MigrationConfig`, restricted to what the transition relation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProtocolConfig {
    /// Which sub-protocol runs.
    pub kind: HandoverKind,
    /// Maximum number of non-blocking pre-copy rounds (the snapshot round
    /// counts) before the divergence policy applies.
    pub max_rounds: usize,
    /// Convergence bound: a round leaving at most this many dirty flows
    /// triggers the freeze.
    pub convergence_flows: usize,
    /// What happens at the round cap without convergence.
    pub on_divergence: DivergencePolicy,
}

impl ProtocolConfig {
    /// A pre-copy protocol with the given knobs.
    pub fn pre_copy(
        max_rounds: usize,
        convergence_flows: usize,
        on_divergence: DivergencePolicy,
    ) -> Self {
        ProtocolConfig {
            kind: HandoverKind::PreCopy,
            max_rounds,
            convergence_flows,
            on_divergence,
        }
    }

    /// The stop-and-copy protocol (rounds and convergence are moot: the one
    /// freeze round ships everything).
    pub fn stop_and_copy() -> Self {
        ProtocolConfig {
            kind: HandoverKind::StopAndCopy,
            max_rounds: 1,
            convergence_flows: 0,
            on_divergence: DivergencePolicy::ForceFreeze,
        }
    }

    /// The fleet's scale-out handoff protocol (one non-blocking slice
    /// round, no freeze).
    pub fn scale_out_handoff() -> Self {
        ProtocolConfig {
            kind: HandoverKind::ScaleOutHandoff,
            max_rounds: 1,
            convergence_flows: 0,
            on_divergence: DivergencePolicy::ForceFreeze,
        }
    }
}

/// The complete dynamic state of one handover: phase plus the round
/// counter. `Copy` and tiny on purpose — the model checker stores millions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HandoverState {
    /// The static knobs this handover runs under.
    pub config: ProtocolConfig,
    /// The current phase.
    pub phase: Phase,
    /// Rounds whose transfer has completed (the snapshot is round 1). Only
    /// pre-copy advances this beyond 1.
    pub rounds_completed: usize,
}

impl HandoverState {
    /// A fresh handover in [`Phase::Serving`], ready for [`Event::Start`].
    pub fn new(config: ProtocolConfig) -> Self {
        HandoverState {
            config,
            phase: Phase::Serving,
            rounds_completed: 0,
        }
    }

    /// A handover frozen at an arbitrary phase/round — for table-driven
    /// tests and tooling that must exercise every `(phase, event)` pair
    /// without replaying a history. The runtime itself only ever uses
    /// [`HandoverState::new`] and [`HandoverState::step`].
    pub fn at_phase(config: ProtocolConfig, phase: Phase, rounds_completed: usize) -> Self {
        HandoverState {
            config,
            phase,
            rounds_completed,
        }
    }

    /// True once the handover reached a terminal phase.
    pub fn is_final(&self) -> bool {
        self.phase.is_final()
    }

    /// The pure transition function.
    ///
    /// Returns the successor state and the [`Actions`] the environment must
    /// perform, or a [`ProtocolError`] if `event` is illegal in the current
    /// phase — in which case the machine is untouched (the receiver is
    /// `&self`), so rejection can never corrupt a handover.
    pub fn step(&self, event: Event) -> Result<(HandoverState, Actions), ProtocolError> {
        use HandoverKind as K;
        let illegal = || {
            Err(ProtocolError {
                phase: self.phase,
                event,
            })
        };
        let next = |phase: Phase, rounds_completed: usize, actions: &[Action]| {
            Ok((
                HandoverState {
                    config: self.config,
                    phase,
                    rounds_completed,
                },
                Actions::of(actions),
            ))
        };

        match (self.phase, event) {
            // ---- Start ---------------------------------------------------
            (Phase::Serving, Event::Start) => match self.config.kind {
                // Stop-and-copy has no serving rounds: the whole state is
                // the freeze payload and the blackout starts immediately.
                K::StopAndCopy => {
                    next(Phase::Freeze, 0, &[Action::ExportFull, Action::PauseSource])
                }
                // Pre-copy and the fleet handoff ship a full snapshot while
                // the source keeps serving.
                K::PreCopy | K::ScaleOutHandoff => next(Phase::Snapshot, 0, &[Action::ExportFull]),
            },
            (_, Event::Start) => illegal(),

            // ---- Serving rounds (snapshot + dirty rounds) ----------------
            (Phase::Snapshot | Phase::DirtyRound(_), Event::RoundDelivered { dirty }) => {
                let completed = self.rounds_completed + 1;
                match self.config.kind {
                    K::StopAndCopy => illegal(),
                    // The handoff's single slice round completes the
                    // protocol: the recipient is authoritative for the
                    // re-steered flows the moment their state lands
                    // (packets that beat it re-created it already).
                    K::ScaleOutHandoff => next(Phase::Done, completed, &[Action::ActivateTarget]),
                    K::PreCopy => {
                        if dirty <= self.config.convergence_flows {
                            // Converged: freeze and ship the residual. The
                            // blackout is bounded by the convergence knob.
                            next(
                                Phase::Freeze,
                                completed,
                                &[Action::ExportDirty, Action::PauseSource],
                            )
                        } else if completed >= self.config.max_rounds {
                            match self.config.on_divergence {
                                // Round cap without convergence: the classic
                                // fallback freezes anyway (unbounded
                                // blackout), the abort policy rolls back.
                                DivergencePolicy::ForceFreeze => next(
                                    Phase::Freeze,
                                    completed,
                                    &[Action::ExportDirty, Action::PauseSource],
                                ),
                                DivergencePolicy::Abort => {
                                    next(Phase::Aborted, completed, &[Action::DiscardTarget])
                                }
                            }
                        } else {
                            next(
                                Phase::DirtyRound((completed + 1) as u32),
                                completed,
                                &[Action::ExportDirty],
                            )
                        }
                    }
                }
            }
            (_, Event::RoundDelivered { .. }) => illegal(),

            // ---- Freeze completion --------------------------------------
            (Phase::Freeze, Event::FreezeDelivered) => next(
                Phase::Done,
                self.rounds_completed + 1,
                &[Action::ActivateTarget],
            ),
            (_, Event::FreezeDelivered) => illegal(),

            // ---- Rollback arcs ------------------------------------------
            // Before the freeze the source never stopped serving, so abort,
            // crash and corruption all roll back by discarding the target.
            (Phase::Snapshot | Phase::DirtyRound(_), Event::Abort)
            | (Phase::Snapshot | Phase::DirtyRound(_), Event::TargetCrash)
            | (Phase::Snapshot | Phase::DirtyRound(_), Event::DeltaRejected) => next(
                Phase::Aborted,
                self.rounds_completed,
                &[Action::DiscardTarget],
            ),
            // During the freeze the source is paused but intact: a crash or
            // a rejected residual rolls back by resuming it. A *voluntary*
            // abort is illegal here — the freeze is the point of no return
            // for operator aborts (matching the runtime, whose freeze is
            // atomic).
            (Phase::Freeze, Event::TargetCrash) | (Phase::Freeze, Event::DeltaRejected) => next(
                Phase::Aborted,
                self.rounds_completed,
                &[Action::DiscardTarget, Action::ResumeSource],
            ),
            (Phase::Freeze, Event::Abort) => illegal(),
            (Phase::Serving | Phase::Done | Phase::Aborted, _) => illegal(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pre_copy() -> ProtocolConfig {
        ProtocolConfig::pre_copy(3, 1, DivergencePolicy::ForceFreeze)
    }

    #[test]
    fn pre_copy_happy_path_converges_into_freeze() {
        let state = HandoverState::new(pre_copy());
        let (state, actions) = state.step(Event::Start).unwrap();
        assert_eq!(state.phase, Phase::Snapshot);
        assert!(actions.contains(Action::ExportFull));
        assert!(!actions.contains(Action::PauseSource));

        // Snapshot done, 5 flows dirty: not converged, round 2 follows.
        let (state, actions) = state.step(Event::RoundDelivered { dirty: 5 }).unwrap();
        assert_eq!(state.phase, Phase::DirtyRound(2));
        assert_eq!(state.rounds_completed, 1);
        assert!(actions.contains(Action::ExportDirty));

        // Round 2 done, 1 flow dirty: converged, freeze the residual.
        let (state, actions) = state.step(Event::RoundDelivered { dirty: 1 }).unwrap();
        assert_eq!(state.phase, Phase::Freeze);
        assert!(actions.contains(Action::ExportDirty));
        assert!(actions.contains(Action::PauseSource));

        let (state, actions) = state.step(Event::FreezeDelivered).unwrap();
        assert_eq!(state.phase, Phase::Done);
        assert!(state.is_final());
        assert!(actions.contains(Action::ActivateTarget));
    }

    #[test]
    fn round_cap_forces_freeze_or_aborts_by_policy() {
        for (policy, phase) in [
            (DivergencePolicy::ForceFreeze, Phase::Freeze),
            (DivergencePolicy::Abort, Phase::Aborted),
        ] {
            let config = ProtocolConfig::pre_copy(2, 0, policy);
            let state = HandoverState::new(config);
            let (state, _) = state.step(Event::Start).unwrap();
            let (state, _) = state.step(Event::RoundDelivered { dirty: 9 }).unwrap();
            assert_eq!(state.phase, Phase::DirtyRound(2));
            // Round 2 is the cap; still 9 dirty — the policy decides.
            let (state, actions) = state.step(Event::RoundDelivered { dirty: 9 }).unwrap();
            assert_eq!(state.phase, phase, "policy {policy}");
            if policy == DivergencePolicy::Abort {
                assert!(actions.contains(Action::DiscardTarget));
                assert!(!actions.contains(Action::PauseSource));
            }
        }
    }

    #[test]
    fn stop_and_copy_is_one_freeze_round() {
        let state = HandoverState::new(ProtocolConfig::stop_and_copy());
        let (state, actions) = state.step(Event::Start).unwrap();
        assert_eq!(state.phase, Phase::Freeze);
        assert!(actions.contains(Action::ExportFull));
        assert!(actions.contains(Action::PauseSource));
        let (state, actions) = state.step(Event::FreezeDelivered).unwrap();
        assert_eq!(state.phase, Phase::Done);
        assert!(actions.contains(Action::ActivateTarget));
        // No serving rounds exist under stop-and-copy.
        let err = HandoverState::at_phase(ProtocolConfig::stop_and_copy(), Phase::Snapshot, 0)
            .step(Event::RoundDelivered { dirty: 0 })
            .unwrap_err();
        assert_eq!(err.event.name(), "round_delivered");
    }

    #[test]
    fn handoff_is_one_non_blocking_round() {
        let state = HandoverState::new(ProtocolConfig::scale_out_handoff());
        let (state, actions) = state.step(Event::Start).unwrap();
        assert_eq!(state.phase, Phase::Snapshot);
        assert!(actions.contains(Action::ExportFull));
        let (state, actions) = state.step(Event::RoundDelivered { dirty: 0 }).unwrap();
        assert_eq!(state.phase, Phase::Done);
        assert!(actions.contains(Action::ActivateTarget));
        // The source never paused anywhere along the way.
        assert!(!actions.contains(Action::PauseSource));
    }

    #[test]
    fn freeze_rolls_back_on_crash_but_rejects_voluntary_abort() {
        let config = pre_copy();
        let frozen = HandoverState::at_phase(config, Phase::Freeze, 2);
        let err = frozen.step(Event::Abort).unwrap_err();
        assert_eq!(err.phase, Phase::Freeze);
        assert!(err.to_string().contains("illegal"));
        let (state, actions) = frozen.step(Event::TargetCrash).unwrap();
        assert_eq!(state.phase, Phase::Aborted);
        assert!(actions.contains(Action::DiscardTarget));
        assert!(actions.contains(Action::ResumeSource));
    }

    #[test]
    fn final_phases_reject_everything() {
        for phase in [Phase::Done, Phase::Aborted] {
            let state = HandoverState::at_phase(pre_copy(), phase, 3);
            for event in [
                Event::Start,
                Event::RoundDelivered { dirty: 0 },
                Event::FreezeDelivered,
                Event::DeltaRejected,
                Event::Abort,
                Event::TargetCrash,
            ] {
                assert!(state.step(event).is_err(), "{phase} must reject {event}");
            }
        }
    }

    #[test]
    fn actions_list_behaves() {
        assert!(Actions::EMPTY.is_empty());
        assert_eq!(Actions::EMPTY.len(), 0);
        let actions = Actions::of(&[Action::ExportDirty, Action::PauseSource]);
        assert_eq!(actions.len(), 2);
        assert_eq!(
            actions.iter().collect::<Vec<_>>(),
            vec![Action::ExportDirty, Action::PauseSource]
        );
        assert!(actions.contains(Action::PauseSource));
        assert!(!actions.contains(Action::ActivateTarget));
    }

    #[test]
    fn names_and_serde_round_trip() {
        for kind in HandoverKind::ALL {
            assert!(!kind.name().is_empty());
        }
        for policy in DivergencePolicy::ALL {
            assert_eq!(DivergencePolicy::from_name(policy.name()), Some(policy));
        }
        assert_eq!(DivergencePolicy::from_name("give_up"), None);
        let json = serde_json::to_string(&DivergencePolicy::Abort).unwrap();
        let back: DivergencePolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, DivergencePolicy::Abort);
        assert_eq!(format!("{}", Phase::DirtyRound(3)), "dirty_round(3)");
        assert_eq!(Event::FreezeDelivered.to_string(), "freeze_delivered");
    }
}
