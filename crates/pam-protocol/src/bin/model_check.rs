//! Exhaustive small-scope model checking of the PAM handover protocol.
//!
//! Runs the scenario suite (see `pam_protocol::checker`), prints one line
//! per scenario with the explored-state count, and exits non-zero if any
//! scenario's outcome differs from its expectation. Scenarios with an
//! `expect` column are *teeth checks*: they run a deliberately unsafe apply
//! policy and MUST produce the named counterexample, proving the checker
//! can still find bugs.
//!
//! ```text
//! model_check [--deep] [--json PATH]
//! ```
//!
//! * `--deep` — widen the bounds (3 flows, reorder window 2, more writes);
//!   this is the nightly CI configuration and explores a much larger space.
//! * `--json PATH` — also write a machine-readable report (scenario names,
//!   explored/terminal counts, violation traces) for CI artifact upload.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]

use pam_protocol::checker::{check, ApplyPolicy, Scenario};
use pam_protocol::machine::DivergencePolicy;
use std::process::ExitCode;

/// One suite entry: the scenario plus the invariant it is expected to
/// violate (`None` for must-pass scenarios).
struct Entry {
    scenario: Scenario,
    expect_violation: Option<&'static str>,
}

fn suite(deep: bool) -> Vec<Entry> {
    let flows = if deep { 3 } else { 2 };
    let writes = if deep { 3 } else { 2 };
    let window = if deep { 2 } else { 1 };
    let mut entries = Vec::new();
    let mut pass = |scenario: Scenario| {
        entries.push(Entry {
            scenario,
            expect_violation: None,
        })
    };

    // Pre-copy on a FIFO link: the baseline space.
    let mut s = Scenario::pre_copy("pre_copy/fifo", flows, 0);
    s.max_writes_per_flow = writes;
    pass(s);

    // Pre-copy under bounded reorder with abort and crash enabled at every
    // phase — the headline scenario.
    let mut s = Scenario::pre_copy("pre_copy/reorder+abort+crash", flows, window);
    s.max_writes_per_flow = writes;
    s.enable_abort = true;
    s.enable_crash = true;
    pass(s);

    // Divergence policy Abort: convergence is unreachable (bound 0, every
    // write dirties), so the round cap must roll back — and the blackout
    // bound must hold everywhere.
    let mut s = Scenario::pre_copy("pre_copy/divergence-abort", flows, window);
    s.max_writes_per_flow = writes;
    s.on_divergence = DivergencePolicy::Abort;
    s.convergence_flows = 0;
    s.max_rounds = 2;
    s.enable_crash = true;
    pass(s);

    // Stop-and-copy with crashes during the freeze.
    let mut s = Scenario::stop_and_copy("stop_and_copy/crash", flows, window);
    s.enable_crash = true;
    pass(s);

    // The fleet's scale-out handoff: re-steered packets re-create state at
    // the recipient while the slice is in flight.
    let mut s = Scenario::scale_out_handoff("scale_out_handoff/guarded", flows, window);
    s.max_writes_per_flow = writes;
    s.enable_abort = true;
    pass(s);

    // Teeth checks: the checker must refute the unsafe apply policy.
    let mut s = Scenario::pre_copy("teeth/pre_copy/last-arrival", 2, 1);
    s.apply_policy = ApplyPolicy::LastArrival;
    entries.push(Entry {
        scenario: s,
        expect_violation: Some("per-flow-order"),
    });
    let mut s = Scenario::scale_out_handoff("teeth/handoff/last-arrival", 2, 0);
    s.apply_policy = ApplyPolicy::LastArrival;
    entries.push(Entry {
        scenario: s,
        expect_violation: Some("per-flow-order"),
    });

    entries
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut deep = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deep" => deep = true,
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: model_check [--deep] [--json PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "PAM handover protocol model checker ({} bounds)",
        if deep { "deep" } else { "PR" }
    );
    println!(
        "{:<34} {:>12} {:>10}  result",
        "scenario", "explored", "terminal"
    );

    let mut failures = 0u32;
    let mut total_explored = 0u64;
    let mut rows = Vec::new();
    for entry in suite(deep) {
        let outcome = check(&entry.scenario);
        total_explored += outcome.explored;
        let (ok, result) = match (&outcome.violation, entry.expect_violation) {
            (None, None) => (true, "ok (all invariants hold)".to_owned()),
            (Some(v), Some(expected)) if v.invariant == expected => {
                (true, format!("ok (refuted as expected: {})", v.invariant))
            }
            (Some(v), None) => (false, format!("FAIL: {}", v.invariant)),
            (None, Some(expected)) => (
                false,
                format!("FAIL: expected {expected} counterexample, found none"),
            ),
            (Some(v), Some(expected)) => (
                false,
                format!("FAIL: expected {expected}, found {}", v.invariant),
            ),
        };
        if !ok {
            failures += 1;
        }
        println!(
            "{:<34} {:>12} {:>10}  {}",
            entry.scenario.name, outcome.explored, outcome.terminal, result
        );
        if let Some(v) = &outcome.violation {
            if entry.expect_violation.is_none() {
                eprint!("{v}");
            }
        }
        rows.push((entry, outcome, ok));
    }
    println!("total states explored: {total_explored}");

    if let Some(path) = json_path {
        let mut out = String::from("{\n  \"bounds\": \"");
        out.push_str(if deep { "deep" } else { "pr" });
        out.push_str("\",\n  \"total_explored\": ");
        out.push_str(&total_explored.to_string());
        out.push_str(",\n  \"scenarios\": [\n");
        for (index, (entry, outcome, ok)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"kind\": \"{}\", \"apply_policy\": \"{}\", \
                 \"explored\": {}, \"terminal\": {}, \"passed\": {}",
                json_escape(&entry.scenario.name),
                entry.scenario.kind.name(),
                entry.scenario.apply_policy.name(),
                outcome.explored,
                outcome.terminal,
                ok
            ));
            if let Some(v) = &outcome.violation {
                out.push_str(&format!(
                    ", \"violation\": \"{}\", \"trace\": [",
                    json_escape(v.invariant)
                ));
                for (step_index, step) in v.trace.iter().enumerate() {
                    if step_index > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(&json_escape(step));
                    out.push('"');
                }
                out.push(']');
            }
            out.push('}');
            if index + 1 < rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        if let Err(error) = std::fs::write(&path, out) {
            eprintln!("failed to write {path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }

    if failures > 0 {
        eprintln!("{failures} scenario(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
