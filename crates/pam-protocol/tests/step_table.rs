//! Table-driven coverage of the handover machine's full transition table:
//! every `(phase, event)` pair, for every handover kind, including the
//! illegal pairs — which must be *rejected* (`Err`, state untouched), never
//! silently absorbed. The tables below are the protocol's ground truth in
//! test form; any edit to `HandoverState::step` that changes a single cell
//! fails here before the model checker even runs.

use pam_protocol::{Action, DivergencePolicy, Event, HandoverState, Phase, ProtocolConfig};

/// What a `(phase, event)` cell of the transition table must produce.
enum Expect {
    /// The event is illegal in this phase: `step` returns `Err` naming both.
    Illegal,
    /// The event fires: the machine moves to this phase with these actions.
    Goes(Phase, &'static [Action]),
}
use Expect::{Goes, Illegal};

/// One row: start phase (+ rounds already completed), event, expectation.
struct Row {
    phase: Phase,
    rounds_completed: usize,
    event: Event,
    expect: Expect,
}

fn row(phase: Phase, rounds_completed: usize, event: Event, expect: Expect) -> Row {
    Row {
        phase,
        rounds_completed,
        event,
        expect,
    }
}

fn run_table(config: ProtocolConfig, rows: Vec<Row>) {
    for r in rows {
        let state = HandoverState::at_phase(config, r.phase, r.rounds_completed);
        let result = state.step(r.event);
        match r.expect {
            Illegal => {
                let error = result.expect_err(&format!(
                    "{:?}: {} in {} (rounds={}) must be illegal",
                    config.kind, r.event, r.phase, r.rounds_completed
                ));
                assert_eq!(error.phase, r.phase);
                assert_eq!(error.event, r.event);
                // Rejection is loud and diagnosable.
                assert!(error.to_string().contains("illegal handover event"));
            }
            Goes(next_phase, actions) => {
                let (next, got) = result.unwrap_or_else(|e| {
                    panic!(
                        "{:?}: {} in {} (rounds={}) must be legal, got {e}",
                        config.kind, r.event, r.phase, r.rounds_completed
                    )
                });
                assert_eq!(
                    next.phase, next_phase,
                    "{:?}: {} in {} lands wrong",
                    config.kind, r.event, r.phase
                );
                assert_eq!(
                    got.iter().collect::<Vec<_>>(),
                    actions.to_vec(),
                    "{:?}: {} in {} emits wrong actions",
                    config.kind,
                    r.event,
                    r.phase
                );
                // The machine is pure: stepping must not mutate the input.
                assert_eq!(state.phase, r.phase);
                assert_eq!(state.rounds_completed, r.rounds_completed);
            }
        }
    }
}

/// Shorthands for the six events (RoundDelivered carries its dirty count).
const START: Event = Event::Start;
const FREEZE_OK: Event = Event::FreezeDelivered;
const REJECT: Event = Event::DeltaRejected;
const ABORT: Event = Event::Abort;
const CRASH: Event = Event::TargetCrash;
fn round(dirty: usize) -> Event {
    Event::RoundDelivered { dirty }
}

#[test]
fn pre_copy_full_transition_table() {
    // max_rounds 3, convergence 1, force-freeze on divergence.
    let config = ProtocolConfig::pre_copy(3, 1, DivergencePolicy::ForceFreeze);
    let dirty2 = Phase::DirtyRound(2);
    run_table(
        config,
        vec![
            // -- Serving: only Start is legal. ---------------------------
            row(
                Phase::Serving,
                0,
                START,
                Goes(Phase::Snapshot, &[Action::ExportFull]),
            ),
            row(Phase::Serving, 0, round(0), Illegal),
            row(Phase::Serving, 0, FREEZE_OK, Illegal),
            row(Phase::Serving, 0, REJECT, Illegal),
            row(Phase::Serving, 0, ABORT, Illegal),
            row(Phase::Serving, 0, CRASH, Illegal),
            // -- Snapshot: rounds and rollback arcs. ---------------------
            row(Phase::Snapshot, 0, START, Illegal),
            // Converged at the snapshot: freeze the residual immediately.
            row(
                Phase::Snapshot,
                0,
                round(1),
                Goes(Phase::Freeze, &[Action::ExportDirty, Action::PauseSource]),
            ),
            // Not converged: next dirty round.
            row(
                Phase::Snapshot,
                0,
                round(5),
                Goes(dirty2, &[Action::ExportDirty]),
            ),
            row(Phase::Snapshot, 0, FREEZE_OK, Illegal),
            row(
                Phase::Snapshot,
                0,
                REJECT,
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            row(
                Phase::Snapshot,
                0,
                ABORT,
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            row(
                Phase::Snapshot,
                0,
                CRASH,
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            // -- DirtyRound(2) with one round completed. -----------------
            row(dirty2, 1, START, Illegal),
            row(
                dirty2,
                1,
                round(0),
                Goes(Phase::Freeze, &[Action::ExportDirty, Action::PauseSource]),
            ),
            row(
                dirty2,
                1,
                round(9),
                Goes(Phase::DirtyRound(3), &[Action::ExportDirty]),
            ),
            row(dirty2, 1, FREEZE_OK, Illegal),
            row(
                dirty2,
                1,
                REJECT,
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            row(
                dirty2,
                1,
                ABORT,
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            row(
                dirty2,
                1,
                CRASH,
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            // At the round cap without convergence, ForceFreeze freezes.
            row(
                Phase::DirtyRound(3),
                2,
                round(9),
                Goes(Phase::Freeze, &[Action::ExportDirty, Action::PauseSource]),
            ),
            // -- Freeze: completion, rollback, and the point of no return.
            row(Phase::Freeze, 2, START, Illegal),
            row(Phase::Freeze, 2, round(0), Illegal),
            row(
                Phase::Freeze,
                2,
                FREEZE_OK,
                Goes(Phase::Done, &[Action::ActivateTarget]),
            ),
            row(
                Phase::Freeze,
                2,
                REJECT,
                Goes(
                    Phase::Aborted,
                    &[Action::DiscardTarget, Action::ResumeSource],
                ),
            ),
            // A voluntary abort is illegal once frozen.
            row(Phase::Freeze, 2, ABORT, Illegal),
            row(
                Phase::Freeze,
                2,
                CRASH,
                Goes(
                    Phase::Aborted,
                    &[Action::DiscardTarget, Action::ResumeSource],
                ),
            ),
            // -- Final phases reject everything. -------------------------
            row(Phase::Done, 3, START, Illegal),
            row(Phase::Done, 3, round(0), Illegal),
            row(Phase::Done, 3, FREEZE_OK, Illegal),
            row(Phase::Done, 3, REJECT, Illegal),
            row(Phase::Done, 3, ABORT, Illegal),
            row(Phase::Done, 3, CRASH, Illegal),
            row(Phase::Aborted, 1, START, Illegal),
            row(Phase::Aborted, 1, round(0), Illegal),
            row(Phase::Aborted, 1, FREEZE_OK, Illegal),
            row(Phase::Aborted, 1, REJECT, Illegal),
            row(Phase::Aborted, 1, ABORT, Illegal),
            row(Phase::Aborted, 1, CRASH, Illegal),
        ],
    );
}

#[test]
fn pre_copy_divergence_abort_policy_rolls_back_at_the_cap() {
    let config = ProtocolConfig::pre_copy(3, 1, DivergencePolicy::Abort);
    run_table(
        config,
        vec![
            // Below the cap the policies agree...
            row(
                Phase::DirtyRound(2),
                1,
                round(9),
                Goes(Phase::DirtyRound(3), &[Action::ExportDirty]),
            ),
            // ...at the cap without convergence, Abort discards instead of
            // freezing (and never pauses the source).
            row(
                Phase::DirtyRound(3),
                2,
                round(9),
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            // Convergence still freezes normally even at the cap.
            row(
                Phase::DirtyRound(3),
                2,
                round(1),
                Goes(Phase::Freeze, &[Action::ExportDirty, Action::PauseSource]),
            ),
        ],
    );
}

#[test]
fn stop_and_copy_full_transition_table() {
    let config = ProtocolConfig::stop_and_copy();
    run_table(
        config,
        vec![
            // Start goes straight to the freeze: the whole state is the
            // blackout payload.
            row(
                Phase::Serving,
                0,
                START,
                Goes(Phase::Freeze, &[Action::ExportFull, Action::PauseSource]),
            ),
            row(Phase::Serving, 0, round(0), Illegal),
            row(Phase::Serving, 0, FREEZE_OK, Illegal),
            row(Phase::Serving, 0, REJECT, Illegal),
            row(Phase::Serving, 0, ABORT, Illegal),
            row(Phase::Serving, 0, CRASH, Illegal),
            // Serving rounds do not exist under stop-and-copy — even if the
            // machine were somehow parked there, rounds are illegal.
            row(Phase::Snapshot, 0, round(0), Illegal),
            row(Phase::DirtyRound(2), 1, round(0), Illegal),
            // Freeze behaves identically to pre-copy's.
            row(
                Phase::Freeze,
                0,
                FREEZE_OK,
                Goes(Phase::Done, &[Action::ActivateTarget]),
            ),
            row(
                Phase::Freeze,
                0,
                CRASH,
                Goes(
                    Phase::Aborted,
                    &[Action::DiscardTarget, Action::ResumeSource],
                ),
            ),
            row(
                Phase::Freeze,
                0,
                REJECT,
                Goes(
                    Phase::Aborted,
                    &[Action::DiscardTarget, Action::ResumeSource],
                ),
            ),
            row(Phase::Freeze, 0, ABORT, Illegal),
            row(Phase::Freeze, 0, START, Illegal),
            row(Phase::Freeze, 0, round(0), Illegal),
            row(Phase::Done, 1, START, Illegal),
            row(Phase::Aborted, 0, CRASH, Illegal),
        ],
    );
}

#[test]
fn scale_out_handoff_full_transition_table() {
    let config = ProtocolConfig::scale_out_handoff();
    run_table(
        config,
        vec![
            // Start exports the slice; the home server never pauses.
            row(
                Phase::Serving,
                0,
                START,
                Goes(Phase::Snapshot, &[Action::ExportFull]),
            ),
            row(Phase::Serving, 0, round(0), Illegal),
            row(Phase::Serving, 0, ABORT, Illegal),
            // The single slice round completes the handoff — no freeze
            // phase exists, whatever the dirty count claims.
            row(
                Phase::Snapshot,
                0,
                round(0),
                Goes(Phase::Done, &[Action::ActivateTarget]),
            ),
            row(
                Phase::Snapshot,
                0,
                round(500),
                Goes(Phase::Done, &[Action::ActivateTarget]),
            ),
            // Rollback arcs still work while the slice is in flight.
            row(
                Phase::Snapshot,
                0,
                ABORT,
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            row(
                Phase::Snapshot,
                0,
                CRASH,
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            row(
                Phase::Snapshot,
                0,
                REJECT,
                Goes(Phase::Aborted, &[Action::DiscardTarget]),
            ),
            row(Phase::Snapshot, 0, FREEZE_OK, Illegal),
            row(Phase::Snapshot, 0, START, Illegal),
            row(Phase::Done, 1, round(0), Illegal),
            row(Phase::Done, 1, ABORT, Illegal),
            row(Phase::Aborted, 0, round(0), Illegal),
        ],
    );
}

#[test]
fn rejection_leaves_no_side_effects() {
    // `step` takes `&self`, so an illegal event cannot corrupt a handover:
    // the very same value keeps working afterwards.
    let config = ProtocolConfig::pre_copy(3, 1, DivergencePolicy::ForceFreeze);
    let state = HandoverState::new(config);
    assert!(state.step(Event::FreezeDelivered).is_err());
    assert!(state.step(Event::Abort).is_err());
    let (after, _) = state.step(Event::Start).unwrap();
    assert_eq!(after.phase, Phase::Snapshot);
    assert_eq!(after.rounds_completed, 0);
}
